//! The trusted self-paging runtime (the paper's library-OS layer).
//!
//! A [`Runtime`] owns an enclave's paging *policy*:
//!
//! * it claims sensitive pages as **enclave-managed** through the driver
//!   interface, pinning them in EPC;
//! * its **fault handler** is guaranteed to run on every page fault
//!   (Autarky's pending-exception flag makes silent OS resolution
//!   impossible) and classifies each fault as: legitimate self-paging,
//!   a forwardable fault on an insensitive OS-managed page, or an attack
//!   — in which case it terminates the enclave;
//! * it fetches and evicts in **cluster** units, maintaining the paper's
//!   residency invariant, with FIFO victim selection (no A/D bits exist
//!   for the OS — or the runtime — to build a clock policy from);
//! * it optionally enforces a **fault-rate bound** for unmodified
//!   binaries (§5.2.4).
//!
//! Both paging mechanisms of §6 are implemented: SGXv1 `EWB`/`ELDU`
//! through driver syscalls, and SGXv2 software sealing with
//! `EAUG`/`EACCEPTCOPY`/`EMODT`.

use std::collections::{HashMap, VecDeque};

use autarky_os_sim::{FaultDisposition, Os};
use autarky_sgx_sim::{AccessError, EnclaveId, FaultCause, Perms, SgxError, Va, Vpn, PAGE_SIZE};

use crate::cluster::ClusterMap;
use crate::error::RtError;
use crate::paging::{blob_key, sw_open, sw_seal};
use crate::ratelimit::{RateLimit, RateLimiter};

/// Which mechanism moves page contents in and out of EPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingMechanism {
    /// Privileged `EWB`/`ELDU` via driver syscalls (faster; hardware
    /// sealing).
    Sgx1,
    /// SGXv2 dynamic memory: the runtime seals pages in software and uses
    /// `EAUG`/`EACCEPTCOPY`/`EMODPR`/`EMODT` (more flexible; extra
    /// crossings and in-enclave crypto).
    Sgx2,
}

/// How the fault handler treats enclave-managed pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    /// Everything pinned; *any* fault on an enclave-managed page is an
    /// attack. The strongest setting when the working set fits in EPC
    /// (libjpeg/Hunspell/FreeType in Table 2).
    PinAll,
    /// Secure self-paging with clusters; faults on evicted pages trigger
    /// cluster-granular fetches.
    SelfPaging,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Fault-handling policy.
    pub mode: PolicyMode,
    /// Optional fault-rate bound (§5.2.4).
    pub rate_limit: Option<RateLimit>,
    /// Paging mechanism.
    pub mechanism: PagingMechanism,
    /// Maximum resident enclave-managed pages (0 = unlimited). The
    /// runtime evicts before fetching when at budget.
    pub budget: usize,
    /// Automatic data-page cluster size for the allocator (0 = off).
    pub auto_cluster_size: usize,
    /// Put all code pages into one per-library cluster at attach time.
    pub cluster_code: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            mode: PolicyMode::SelfPaging,
            rate_limit: None,
            mechanism: PagingMechanism::Sgx1,
            budget: 0,
            auto_cluster_size: 0,
            cluster_code: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Resident,
    Evicted,
}

/// Runtime event counters.
#[derive(Debug, Default, Clone)]
pub struct RtStats {
    /// Faults observed by the trusted handler.
    pub faults_handled: u64,
    /// Faults on OS-managed pages forwarded back to the OS.
    pub forwarded: u64,
    /// Pages fetched by self-paging.
    pub pages_fetched: u64,
    /// Pages evicted by self-paging.
    pub pages_evicted: u64,
    /// Heap pages allocated lazily.
    pub pages_allocated: u64,
    /// Allocations served.
    pub allocs: u64,
}

/// The trusted runtime instance for one enclave.
pub struct Runtime {
    /// Enclave this runtime manages.
    pub eid: EnclaveId,
    /// TCS used for execution.
    pub tcs: usize,
    config: RuntimeConfig,
    tracked: HashMap<Vpn, PageState>,
    /// Page clusters (public: applications call the Table 1 API on it).
    pub clusters: ClusterMap,
    self_paging: bool,
    /// FIFO of resident enclave-managed pages in fetch order.
    fifo: VecDeque<Vpn>,
    resident_count: usize,
    limiter: RateLimiter,
    sealing_key: [u8; 32],
    sw_versions: HashMap<Vpn, u64>,
    /// Original EPCM permissions of pages evicted via the SGXv2 software
    /// path, restored at `EACCEPTCOPY` time (the hardware path carries
    /// them in the sealed blob instead).
    sw_perms: HashMap<Vpn, Perms>,
    /// Heap bump/free-list allocator state.
    heap: Heap,
    /// Event counters.
    pub stats: RtStats,
    terminated: bool,
}

struct Heap {
    start: Va,
    pages: usize,
    bump: u64,
    free_lists: HashMap<usize, Vec<Va>>,
    /// One-past-the-highest page already backed by EPC.
    allocated_until: u64,
}

impl Runtime {
    /// Attach a runtime to a loaded enclave: claim its code/data/stack
    /// pages as enclave-managed (self-paging enclaves only) and set up
    /// clusters per the configuration.
    pub fn attach(os: &mut Os, eid: EnclaveId, config: RuntimeConfig) -> Result<Self, RtError> {
        let image = os.image(eid)?.clone();
        let self_paging = image.self_paging;
        let mut rt = Self {
            eid,
            tcs: 0,
            self_paging,
            tracked: HashMap::new(),
            clusters: ClusterMap::default(),
            fifo: VecDeque::new(),
            resident_count: 0,
            limiter: RateLimiter::new(config.rate_limit),
            sealing_key: derive_sealing_key(eid),
            sw_versions: HashMap::new(),
            sw_perms: HashMap::new(),
            heap: Heap {
                start: image.heap_start().base(),
                pages: image.heap_pages,
                bump: 0,
                free_lists: HashMap::new(),
                allocated_until: image.heap_start().0,
            },
            stats: RtStats::default(),
            config,
            terminated: false,
        };
        if rt.config.auto_cluster_size > 0 {
            rt.clusters.ay_init_clusters(0, rt.config.auto_cluster_size);
        }
        if self_paging {
            // Claim the measured image (code, data, stack) as
            // enclave-managed; the runtime's own state rides along.
            let pages: Vec<Vpn> = (image.code_start().0..image.heap_start().0)
                .map(Vpn)
                .collect();
            let status = os.ay_set_enclave_managed(eid, &pages)?;
            for (vpn, resident) in status {
                let state = if resident {
                    PageState::Resident
                } else {
                    PageState::Evicted
                };
                if resident {
                    rt.fifo.push_back(vpn);
                    rt.resident_count += 1;
                }
                rt.tracked.insert(vpn, state);
            }
            if rt.config.cluster_code {
                // One cluster per library (§5.2.3, "Clusters for code
                // pages"), created automatically by the trusted loader. A
                // library's cluster also covers the code of libraries it
                // calls into, so control flow across the dependency edge
                // never faults separately — and dependents of a shared
                // library end up sharing pages, which the transitive
                // fetch-set rule then keeps consistent.
                if image.libraries.is_empty() {
                    let lib = rt.clusters.new_cluster();
                    for vpn in image.code_range() {
                        rt.clusters.ay_add_page(lib, vpn)?;
                    }
                } else {
                    for (index, library) in image.libraries.iter().enumerate() {
                        let cluster = rt.clusters.new_cluster();
                        for vpn in image.library_pages(index) {
                            rt.clusters.ay_add_page(cluster, vpn)?;
                        }
                        for &dep in &library.uses {
                            for vpn in image.library_pages(dep) {
                                rt.clusters.ay_add_page(cluster, vpn)?;
                            }
                        }
                    }
                    // Code pages outside any declared library form one
                    // residual cluster.
                    let declared: usize = image.libraries.iter().map(|l| l.pages).sum();
                    if declared < image.code_pages {
                        let rest = rt.clusters.new_cluster();
                        for vpn in image.code_range().skip(declared) {
                            rt.clusters.ay_add_page(rest, vpn)?;
                        }
                    }
                }
            }
        }
        Ok(rt)
    }

    /// Whether the runtime terminated the enclave (attack response).
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// The configured budget (0 = unlimited).
    pub fn budget(&self) -> usize {
        self.config.budget
    }

    /// Adjust the resident-page budget at run time.
    pub fn set_budget(&mut self, budget: usize) {
        self.config.budget = budget;
    }

    /// Cooperatively shrink to `new_budget` resident pages, evicting down
    /// immediately (the enclave side of a memory-ballooning upcall, §5.2.1
    /// / §5.4 — the paper defers the upcall protocol; this is the enclave
    /// mechanism it would invoke).
    pub fn shrink_budget(&mut self, os: &mut Os, new_budget: usize) -> Result<(), RtError> {
        self.config.budget = new_budget;
        self.make_room(os, 0)
    }

    /// Resident enclave-managed pages.
    pub fn resident_pages(&self) -> usize {
        self.resident_count
    }

    /// Whether a tracked page is currently resident (`None` when the page
    /// is not enclave-managed).
    pub fn residency(&self, vpn: Vpn) -> Option<bool> {
        self.tracked.get(&vpn).map(|s| *s == PageState::Resident)
    }

    /// Record forward progress for the rate limiter (I/O, syscalls,
    /// allocations — called by the libOS layers above).
    pub fn progress(&mut self, amount: u64) {
        self.limiter.progress(amount);
    }

    /// Faults counted by the rate limiter so far.
    pub fn fault_count(&self) -> u64 {
        self.limiter.faults()
    }

    // ----------------------------------------------------------------
    // Memory operations with full fault resolution.
    // ----------------------------------------------------------------

    /// Read enclave memory at `va`, resolving faults per policy.
    pub fn read(&mut self, os: &mut Os, va: Va, buf: &mut [u8]) -> Result<(), RtError> {
        loop {
            match os.machine.read_bytes(self.eid, self.tcs, va, buf) {
                Ok(()) => return Ok(()),
                Err(e) => self.resolve(os, e)?,
            }
        }
    }

    /// Write enclave memory at `va`, resolving faults per policy.
    pub fn write(&mut self, os: &mut Os, va: Va, buf: &[u8]) -> Result<(), RtError> {
        loop {
            match os.machine.write_bytes(self.eid, self.tcs, va, buf) {
                Ok(()) => return Ok(()),
                Err(e) => self.resolve(os, e)?,
            }
        }
    }

    /// Simulate executing code at `va` (instruction fetch), resolving
    /// faults per policy.
    pub fn exec(&mut self, os: &mut Os, va: Va) -> Result<(), RtError> {
        loop {
            match os.machine.fetch_code(self.eid, self.tcs, va) {
                Ok(()) => return Ok(()),
                Err(e) => self.resolve(os, e)?,
            }
        }
    }

    fn resolve(&mut self, os: &mut Os, err: AccessError) -> Result<(), RtError> {
        if self.terminated {
            return Err(RtError::Terminated);
        }
        match err {
            AccessError::Fatal(SgxError::Terminated) => Err(RtError::Terminated),
            AccessError::Fatal(e) => Err(RtError::Sgx(e)),
            AccessError::Fault(ev) if ev.elided => {
                // Proposed hardware optimization: we are already "in" the
                // handler; no AEX, no OS, no transitions.
                let outcome = self.handle_fault(os);
                os.machine.pop_ssa(self.eid, self.tcs)?;
                outcome
            }
            AccessError::Fault(ev) => {
                match os.on_fault(ev)? {
                    FaultDisposition::Resumed => Ok(()), // legacy silent path
                    FaultDisposition::HandlerRequired => {
                        let outcome = self.handle_fault(os);
                        if outcome.is_ok() {
                            if os.machine.elide_handler_invocation() {
                                // "No upcall" variant (Table 2): in-enclave
                                // resume pops the SSA without EEXIT+ERESUME.
                                os.machine.pop_ssa(self.eid, self.tcs)?;
                            } else {
                                os.machine.eexit(self.eid, self.tcs)?;
                                os.machine.eresume(self.eid, self.tcs)?;
                            }
                        }
                        outcome
                    }
                }
            }
        }
    }

    // ----------------------------------------------------------------
    // The fault handler (the heart of the defense).
    // ----------------------------------------------------------------

    /// The trusted page-fault handler. Runs with the real fault
    /// information from the SSA frame; the OS saw only a masked report.
    pub fn handle_fault(&mut self, os: &mut Os) -> Result<(), RtError> {
        self.stats.faults_handled += 1;
        os.machine.clock.charge(os.machine.costs.runtime_handler);
        let info = match os.machine.ssa_exinfo(self.eid, self.tcs)? {
            Some(info) => info,
            None => {
                // Handler invoked with no pending exception: re-entrancy
                // games by the OS (§5.3).
                return self.attack(os, Vpn(0), "handler entered with empty SSA");
            }
        };
        let vpn = info.va.vpn();

        // Cleared accessed/dirty bits can only come from the OS: benign
        // mappings are always installed with them preset.
        if info.cause == FaultCause::AdBitsClear {
            return self.attack(os, vpn, "PTE accessed/dirty bits cleared by OS");
        }

        match self.tracked.get(&vpn).copied() {
            None => {
                // OS-managed page: insensitive by declaration. Forward the
                // fault so the OS can demand-page it (§7.3's libjpeg flow).
                if !self.limiter.on_fault() {
                    return self.kill_rate_limited(os);
                }
                os.ay_fetch_pages(self.eid, &[vpn])?;
                self.stats.forwarded += 1;
                Ok(())
            }
            Some(PageState::Resident) => {
                // The page should be mapped and accessible — the OS (or
                // an attacker) broke the mapping. This is the detection
                // path for the controlled channel.
                self.attack(os, vpn, "unexpected fault on resident enclave-managed page")
            }
            Some(PageState::Evicted) => {
                if self.config.mode == PolicyMode::PinAll {
                    return self.attack(os, vpn, "fault on pinned page under PinAll policy");
                }
                if !self.limiter.on_fault() {
                    return self.kill_rate_limited(os);
                }
                // Legitimate self-paging: fetch the transitive cluster set.
                let fetch: Vec<Vpn> = self
                    .clusters
                    .fetch_set(vpn)
                    .into_iter()
                    .filter(|p| self.tracked.get(p) == Some(&PageState::Evicted))
                    .collect();
                self.make_room(os, fetch.len())?;
                self.fetch_pages(os, &fetch)?;
                Ok(())
            }
        }
    }

    fn attack(&mut self, os: &mut Os, vpn: Vpn, why: &'static str) -> Result<(), RtError> {
        self.terminated = true;
        os.machine.terminate(self.eid)?;
        Err(RtError::AttackDetected { vpn, why })
    }

    fn kill_rate_limited(&mut self, os: &mut Os) -> Result<(), RtError> {
        self.terminated = true;
        os.machine.terminate(self.eid)?;
        Err(RtError::RateLimitExceeded)
    }

    // ----------------------------------------------------------------
    // Self-paging mechanics.
    // ----------------------------------------------------------------

    fn make_room(&mut self, os: &mut Os, incoming: usize) -> Result<(), RtError> {
        let budget = self.config.budget;
        if budget == 0 {
            return Ok(());
        }
        if incoming > budget {
            return Err(RtError::OutOfBudget {
                needed: incoming,
                budget,
            });
        }
        while self.resident_count + incoming > budget {
            let victim = loop {
                let Some(v) = self.fifo.pop_front() else {
                    return Err(RtError::OutOfBudget {
                        needed: incoming,
                        budget,
                    });
                };
                if self.tracked.get(&v) == Some(&PageState::Resident) {
                    break v;
                }
            };
            // Evict the victim's whole cluster (safe even when shared).
            let evict: Vec<Vpn> = self
                .clusters
                .evict_set(victim)
                .into_iter()
                .filter(|p| self.tracked.get(p) == Some(&PageState::Resident))
                .collect();
            self.evict_pages(os, &evict)?;
        }
        Ok(())
    }

    /// Evict `pages` now (used by the policy and exposed for the paging
    /// microbenchmarks).
    pub fn evict_pages(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        if pages.is_empty() {
            return Ok(());
        }
        match self.config.mechanism {
            PagingMechanism::Sgx1 => {
                os.ay_evict_pages(self.eid, pages)?;
            }
            PagingMechanism::Sgx2 => {
                for &vpn in pages {
                    // Remember the page's permissions so the refetch can
                    // restore them (code pages must come back executable).
                    let original = os
                        .machine
                        .page_table(self.eid)?
                        .get(vpn)
                        .map(|pte| pte.perms)
                        .unwrap_or(Perms::RW);
                    self.sw_perms.insert(vpn, original);
                    // Restrict to read-only so concurrent writes cannot race
                    // the copy-out, per §6.
                    os.machine.emodpr(self.eid, vpn, Perms::R)?;
                    os.machine.eaccept(self.eid, vpn)?;
                    let contents = os.machine.read_own_page(self.eid, vpn)?;
                    let version = {
                        let v = self.sw_versions.entry(vpn).or_insert(0);
                        *v += 1;
                        *v
                    };
                    os.machine
                        .clock
                        .charge(os.machine.costs.sw_crypto_per_byte * PAGE_SIZE as u64);
                    let blob = sw_seal(&self.sealing_key, vpn, version, &contents);
                    os.sys_untrusted_write(blob_key(self.eid.0, vpn), blob);
                    os.machine.emodt_trim(self.eid, vpn)?;
                    os.machine.eaccept(self.eid, vpn)?;
                    os.ay_remove_pages(self.eid, &[vpn])?;
                }
            }
        }
        for &vpn in pages {
            if let Some(state) = self.tracked.get_mut(&vpn) {
                if *state == PageState::Resident {
                    *state = PageState::Evicted;
                    self.resident_count -= 1;
                }
            }
            // Lazy FIFO: stale entries are skipped at pop time.
        }
        self.stats.pages_evicted += pages.len() as u64;
        Ok(())
    }

    /// Fetch `pages` now (used by the policy and exposed for the paging
    /// microbenchmarks).
    pub fn fetch_pages(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        if pages.is_empty() {
            return Ok(());
        }
        match self.config.mechanism {
            PagingMechanism::Sgx1 => {
                os.ay_fetch_pages(self.eid, pages)?;
            }
            PagingMechanism::Sgx2 => {
                for &vpn in pages {
                    let key = blob_key(self.eid.0, vpn);
                    let blob = os.sys_untrusted_read(key).ok_or(RtError::SealBroken(vpn))?;
                    let version = *self.sw_versions.get(&vpn).unwrap_or(&0);
                    os.machine
                        .clock
                        .charge(os.machine.costs.sw_crypto_per_byte * PAGE_SIZE as u64);
                    let contents = sw_open(&self.sealing_key, vpn, version, &blob)
                        .ok_or(RtError::SealBroken(vpn))?;
                    os.ay_alloc_pages(self.eid, &[vpn])?;
                    let perms = self.sw_perms.get(&vpn).copied().unwrap_or(Perms::RW);
                    os.machine.eacceptcopy(self.eid, vpn, &contents, perms)?;
                    if perms != Perms::RW {
                        // Restore the original mapping permissions (code
                        // pages must come back executable).
                        os.ay_protect_pages(self.eid, &[vpn], perms)?;
                    }
                }
            }
        }
        for &vpn in pages {
            if let Some(state) = self.tracked.get_mut(&vpn) {
                if *state == PageState::Evicted {
                    *state = PageState::Resident;
                    self.resident_count += 1;
                    self.fifo.push_back(vpn);
                }
            }
        }
        self.stats.pages_fetched += pages.len() as u64;
        Ok(())
    }

    /// Hand pages back to OS management (the §7.3 libjpeg flow: buffers
    /// whose access pattern is insensitive can use flexible OS paging).
    /// The pages leave the runtime's tracking and any clusters.
    pub fn release_to_os(&mut self, os: &mut Os, pages: &[Vpn]) -> Result<(), RtError> {
        os.ay_set_os_managed(self.eid, pages)?;
        for &vpn in pages {
            if self.tracked.remove(&vpn) == Some(PageState::Resident) {
                self.resident_count -= 1;
            }
            for id in self.clusters.ay_get_cluster_ids(vpn) {
                let _ = self.clusters.ay_remove_page(id, vpn);
            }
        }
        Ok(())
    }

    /// Verify the cluster residency invariant (§5.2.3) — used by tests.
    pub fn cluster_invariant_holds(&self) -> bool {
        self.clusters
            .invariant_holds(|vpn| self.tracked.get(&vpn) != Some(&PageState::Evicted))
    }

    // ----------------------------------------------------------------
    // Heap allocator (libOS allocator with automatic clustering, §5.2.3).
    // ----------------------------------------------------------------

    /// Allocate `size` bytes from the enclave heap (16-byte aligned).
    ///
    /// Backing pages are allocated lazily with `EAUG`+`EACCEPT`, become
    /// enclave-managed, and join the automatic data clusters when
    /// configured.
    pub fn malloc(&mut self, os: &mut Os, size: usize) -> Result<Va, RtError> {
        if self.terminated {
            return Err(RtError::Terminated);
        }
        self.stats.allocs += 1;
        let size = size.max(1).next_multiple_of(16);
        if let Some(list) = self.heap.free_lists.get_mut(&size) {
            if let Some(va) = list.pop() {
                return Ok(va);
            }
        }
        let offset = self.heap.bump;
        let end = offset + size as u64;
        if end > (self.heap.pages * PAGE_SIZE) as u64 {
            return Err(RtError::OutOfMemory);
        }
        self.heap.bump = end;
        let va = Va(self.heap.start.0 + offset);
        // Ensure every page covered by the allocation is backed.
        let first = va.vpn().0;
        let last = Va(self.heap.start.0 + end - 1).vpn().0;
        for n in first..=last {
            self.ensure_heap_page(os, Vpn(n))?;
        }
        Ok(va)
    }

    /// Eagerly back the first `n` heap pages (models statically allocated
    /// datasets, so timed regions exclude allocation costs).
    pub fn prealloc_heap_pages(&mut self, os: &mut Os, n: usize) -> Result<(), RtError> {
        let last = Vpn(self.heap.start.vpn().0 + (n.min(self.heap.pages)) as u64 - 1);
        self.ensure_heap_page(os, last)
    }

    /// Return an allocation of `size` bytes at `va` to the free list.
    pub fn free(&mut self, va: Va, size: usize) {
        let size = size.max(1).next_multiple_of(16);
        self.heap.free_lists.entry(size).or_default().push(va);
    }

    fn ensure_heap_page(&mut self, os: &mut Os, vpn: Vpn) -> Result<(), RtError> {
        if vpn.0 < self.heap.allocated_until {
            return Ok(());
        }
        // Lazy allocation: EAUG + EACCEPT, under the budget. Legacy
        // enclaves allocate the same way (Graphene-on-SGXv2 behaviour)
        // but their pages stay OS-managed and untracked.
        for n in self.heap.allocated_until..=vpn.0 {
            let page = Vpn(n);
            if self.self_paging {
                self.make_room(os, 1)?;
            }
            os.ay_alloc_pages(self.eid, &[page])?;
            os.machine.eaccept(self.eid, page)?;
            if self.self_paging {
                self.tracked.insert(page, PageState::Resident);
                self.resident_count += 1;
                self.fifo.push_back(page);
                self.clusters.auto_assign(page);
            }
            self.stats.pages_allocated += 1;
        }
        self.heap.allocated_until = vpn.0 + 1;
        Ok(())
    }
}

fn derive_sealing_key(eid: EnclaveId) -> [u8; 32] {
    // Stand-in for EGETKEY: a per-enclave sealing key.
    autarky_crypto::hmac_sha256(b"autarky-runtime-sealing", &eid.0.to_le_bytes())
}
