//! Page-fault rate limiting (paper §5.2.4).
//!
//! The enclave lacks a trusted time source (the cycle counter is
//! untrusted; the SGX platform-services clock is too slow for a fault
//! handler), so the limit is expressed against application-specific
//! *forward progress* observed by the libOS — I/O operations, memory
//! allocations, system calls. The enclave terminates when legitimate
//! demand-paging faults outpace progress beyond the configured bound.

/// Configuration of the bounded-leakage policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Maximum tolerated faults per unit of progress.
    pub max_faults_per_progress: f64,
    /// Grace amount: faults tolerated before the ratio is enforced,
    /// covering cold-start (first touch of the working set faults heavily
    /// before any progress accrues).
    pub burst: u64,
}

impl Default for RateLimit {
    fn default() -> Self {
        Self {
            max_faults_per_progress: 64.0,
            burst: 4096,
        }
    }
}

impl RateLimit {
    /// Faults the policy tolerates after `progress` units of forward
    /// progress (the enforcement line of [`RateLimiter::on_fault`]).
    pub fn allowed_faults(&self, progress: u64) -> f64 {
        self.burst as f64 + progress as f64 * self.max_faults_per_progress
    }

    /// The leakage budget ε in bits per unit of progress: each tolerated
    /// fault identifies at most one of `tracked_pages` pages, so it leaks
    /// at most log2(tracked_pages) bits. The burst is a one-time constant,
    /// not a rate, so it does not appear here.
    pub fn budget_bits_per_progress(&self, tracked_pages: usize) -> f64 {
        self.max_faults_per_progress * (tracked_pages.max(2) as f64).log2()
    }
}

/// Fault-rate tracking state.
#[derive(Debug, Default, Clone)]
pub struct RateLimiter {
    limit: Option<RateLimit>,
    faults: u64,
    progress: u64,
}

impl RateLimiter {
    /// Create a limiter; `None` disables enforcement.
    pub fn new(limit: Option<RateLimit>) -> Self {
        Self {
            limit,
            faults: 0,
            progress: 0,
        }
    }

    /// Rebuild a limiter from captured counters (checkpoint restore). The
    /// fault/progress history must survive a legitimate snapshot/restore
    /// cycle — a restart that reset the counters would launder the
    /// leakage budget the limiter enforces.
    pub fn from_parts(limit: Option<RateLimit>, faults: u64, progress: u64) -> Self {
        Self {
            limit,
            faults,
            progress,
        }
    }

    /// The configured limit (for checkpoint capture).
    pub fn limit(&self) -> Option<RateLimit> {
        self.limit
    }

    /// Record `amount` units of forward progress (I/O, allocations,
    /// system calls — counted by the libOS).
    pub fn progress(&mut self, amount: u64) {
        self.progress = self.progress.saturating_add(amount);
    }

    /// Record one legitimate page fault; returns `false` when the bound is
    /// now exceeded (caller must terminate the enclave).
    #[must_use]
    pub fn on_fault(&mut self) -> bool {
        self.faults += 1;
        let Some(limit) = self.limit else { return true };
        if self.faults <= limit.burst {
            return true;
        }
        let allowed = limit.burst as f64 + self.progress as f64 * limit.max_faults_per_progress;
        (self.faults as f64) <= allowed
    }

    /// Total faults recorded.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Total progress recorded.
    pub fn progress_total(&self) -> u64 {
        self.progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_limiter_never_trips() {
        let mut limiter = RateLimiter::new(None);
        for _ in 0..100_000 {
            assert!(limiter.on_fault());
        }
    }

    #[test]
    fn burst_tolerated_then_ratio_enforced() {
        let mut limiter = RateLimiter::new(Some(RateLimit {
            max_faults_per_progress: 2.0,
            burst: 10,
        }));
        for _ in 0..10 {
            assert!(limiter.on_fault(), "burst allowance");
        }
        // No progress yet: the very next fault trips the bound.
        assert!(!limiter.on_fault());
    }

    #[test]
    fn progress_buys_fault_budget() {
        let mut limiter = RateLimiter::new(Some(RateLimit {
            max_faults_per_progress: 2.0,
            burst: 0,
        }));
        limiter.progress(5); // budget: 10 faults
        for i in 0..10 {
            assert!(limiter.on_fault(), "fault {i} within budget");
        }
        // The over-budget fault still counts (the enclave would have been
        // terminated; counting it keeps the math monotonic).
        assert!(!limiter.on_fault(), "11th fault over budget");
        limiter.progress(1); // +2 budget → 12 allowed, 11 consumed
        assert!(limiter.on_fault(), "12th fault within new budget");
        assert!(!limiter.on_fault(), "13th fault over budget again");
    }

    #[test]
    fn counters_accumulate() {
        let mut limiter = RateLimiter::new(None);
        limiter.progress(3);
        let _ = limiter.on_fault();
        let _ = limiter.on_fault();
        assert_eq!(limiter.faults(), 2);
        assert_eq!(limiter.progress_total(), 3);
    }
}
