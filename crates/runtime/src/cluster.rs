//! Page clusters (paper §5.2.3, Table 1).
//!
//! A page cluster is a consistent set of enclave-managed pages that are
//! evicted and fetched *together*, so the adversary watching the
//! demand-paging side channel cannot tell which page of the cluster caused
//! a fault. The module maintains the paper's invariant:
//!
//! > for each non-resident page, there is at least one cluster to which it
//! > belongs with all of its pages non-resident.
//!
//! Pages may belong to several clusters (code-page sharing across
//! libraries). Fetching therefore pulls in the *transitive closure* of
//! clusters that share pages with the faulting cluster; evicting one
//! cluster at a time is always safe (§5.2.3's argument), and both rules
//! are property-tested.

use std::collections::{BTreeSet, HashMap, VecDeque};

use autarky_sgx_sim::Vpn;

use crate::error::RtError;

/// Identifier of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

#[derive(Debug, Default, Clone)]
struct Cluster {
    pages: BTreeSet<Vpn>,
}

/// The cluster registry (the Table 1 API surface).
#[derive(Debug, Default)]
pub struct ClusterMap {
    clusters: HashMap<ClusterId, Cluster>,
    by_page: HashMap<Vpn, BTreeSet<ClusterId>>,
    next_id: u32,
    /// Target size for automatically grown clusters (`ay_init_clusters`'s
    /// `s` parameter); 0 disables auto-clustering.
    auto_size: usize,
    /// The auto-cluster currently being filled by the allocator.
    auto_current: Option<ClusterId>,
}

/// Deterministic export of a [`ClusterMap`] for checkpoint/restore.
///
/// Clusters come out sorted by id with their pages sorted, so identical
/// registries always produce identical captures. The `by_page` reverse
/// index is derivable and is rebuilt at restore time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterCapture {
    /// `(cluster, its pages sorted)` pairs, sorted by cluster id.
    pub clusters: Vec<(ClusterId, Vec<Vpn>)>,
    /// Next id the registry would hand out.
    pub next_id: u32,
    /// Auto-clustering target size (0 = disabled).
    pub auto_size: usize,
    /// The auto-cluster currently being filled, if any.
    pub auto_current: Option<ClusterId>,
}

impl ClusterMap {
    /// `ay_init_clusters(n, s)`: pre-create `n` clusters and set the
    /// target size `s` for automatic clustering. Returns the new ids.
    pub fn ay_init_clusters(&mut self, n: usize, s: usize) -> Vec<ClusterId> {
        self.auto_size = s;
        (0..n).map(|_| self.new_cluster()).collect()
    }

    /// `ay_release_clusters()`: drop all cluster state.
    pub fn ay_release_clusters(&mut self) {
        self.clusters.clear();
        self.by_page.clear();
        self.auto_current = None;
    }

    /// `ay_add_page(cluster, page)`: register `page` with `cluster`.
    pub fn ay_add_page(&mut self, cluster: ClusterId, page: Vpn) -> Result<(), RtError> {
        let c = self
            .clusters
            .get_mut(&cluster)
            .ok_or(RtError::BadCluster("no such cluster"))?;
        c.pages.insert(page);
        self.by_page.entry(page).or_default().insert(cluster);
        Ok(())
    }

    /// `ay_remove_page(cluster, page)`: de-register `page` from `cluster`.
    pub fn ay_remove_page(&mut self, cluster: ClusterId, page: Vpn) -> Result<(), RtError> {
        let c = self
            .clusters
            .get_mut(&cluster)
            .ok_or(RtError::BadCluster("no such cluster"))?;
        if !c.pages.remove(&page) {
            return Err(RtError::BadCluster("page not in cluster"));
        }
        if let Some(ids) = self.by_page.get_mut(&page) {
            ids.remove(&cluster);
            if ids.is_empty() {
                self.by_page.remove(&page);
            }
        }
        Ok(())
    }

    /// `ay_get_cluster_ids(page)`: all clusters containing `page`.
    pub fn ay_get_cluster_ids(&self, page: Vpn) -> Vec<ClusterId> {
        self.by_page
            .get(&page)
            .map(|ids| ids.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Create one fresh, empty cluster.
    pub fn new_cluster(&mut self) -> ClusterId {
        let id = ClusterId(self.next_id);
        self.next_id += 1;
        self.clusters.insert(id, Cluster::default());
        id
    }

    /// Pages of one cluster.
    pub fn pages_of(&self, cluster: ClusterId) -> impl Iterator<Item = Vpn> + '_ {
        self.clusters
            .get(&cluster)
            .into_iter()
            .flat_map(|c| c.pages.iter().copied())
    }

    /// Number of pages in a cluster.
    pub fn cluster_len(&self, cluster: ClusterId) -> usize {
        self.clusters
            .get(&cluster)
            .map(|c| c.pages.len())
            .unwrap_or(0)
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether no clusters exist.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Automatic clustering for allocated data pages (§5.2.3): each page
    /// joins the currently-filling auto-cluster; when it reaches the
    /// configured size, a new one is started. Returns the page's cluster,
    /// or `None` when auto-clustering is disabled.
    ///
    /// Fails with [`RtError::BadCluster`] only if the registry is
    /// inconsistent (e.g. the current auto-cluster was released out from
    /// under the allocator) — callers on the allocation path propagate
    /// this instead of panicking.
    pub fn auto_assign(&mut self, page: Vpn) -> Result<Option<ClusterId>, RtError> {
        if self.auto_size == 0 {
            return Ok(None);
        }
        let id = match self.auto_current {
            Some(id)
                if self.clusters.contains_key(&id) && self.cluster_len(id) < self.auto_size =>
            {
                id
            }
            _ => {
                let id = self.new_cluster();
                self.auto_current = Some(id);
                id
            }
        };
        self.ay_add_page(id, page)?;
        Ok(Some(id))
    }

    /// On `free`, merge under-full auto clusters so they stay near-full
    /// (the paper's allocator extension). Returns the id everything was
    /// merged into, if a merge happened.
    ///
    /// Fails with [`RtError::BadCluster`] only on registry inconsistency
    /// (a page listed by a cluster that does not contain it); the error is
    /// typed so the allocator's `free` path stays panic-free.
    pub fn merge_underfull(&mut self) -> Result<Option<ClusterId>, RtError> {
        if self.auto_size == 0 {
            return Ok(None);
        }
        let mut underfull: Vec<ClusterId> = self
            .clusters
            .iter()
            .filter(|(_, c)| !c.pages.is_empty() && c.pages.len() < self.auto_size)
            .map(|(&id, _)| id)
            .collect();
        underfull.sort_unstable();
        if underfull.len() < 2 {
            return Ok(None);
        }
        let target = underfull[0];
        for &src in &underfull[1..] {
            if self.cluster_len(target) >= self.auto_size {
                break;
            }
            let pages: Vec<Vpn> = self.pages_of(src).collect();
            for page in pages {
                if self.cluster_len(target) >= self.auto_size {
                    break;
                }
                self.ay_remove_page(src, page)?;
                self.ay_add_page(target, page)?;
            }
        }
        Ok(Some(target))
    }

    /// The fetch set for a fault on `page`: the union of pages of the
    /// transitive closure of clusters reachable from `page` via shared
    /// pages. A page in no cluster is its own singleton set.
    ///
    /// This implements the paper's rule that fetching must pull in "the
    /// transitive set of all clusters sharing pages with the faulting
    /// cluster and among themselves" — otherwise a shared page could be
    /// left as the lone non-resident page of a cluster, and a later fault
    /// on it would uniquely identify it.
    pub fn fetch_set(&self, page: Vpn) -> BTreeSet<Vpn> {
        let mut pages: BTreeSet<Vpn> = BTreeSet::new();
        pages.insert(page);
        let seed = match self.by_page.get(&page) {
            Some(ids) => ids.clone(),
            None => return pages,
        };
        let mut visited: BTreeSet<ClusterId> = BTreeSet::new();
        let mut queue: VecDeque<ClusterId> = seed.into_iter().collect();
        while let Some(id) = queue.pop_front() {
            if !visited.insert(id) {
                continue;
            }
            for p in self.pages_of(id) {
                if pages.insert(p) {
                    if let Some(ids) = self.by_page.get(&p) {
                        for &next in ids {
                            if !visited.contains(&next) {
                                queue.push_back(next);
                            }
                        }
                    }
                }
            }
        }
        pages
    }

    /// The evict set when evicting the cluster(s) of `page`: just the
    /// pages of one cluster containing `page` (evicting a single cluster
    /// is always safe). For un-clustered pages, the singleton.
    pub fn evict_set(&self, page: Vpn) -> BTreeSet<Vpn> {
        match self.by_page.get(&page).and_then(|ids| ids.iter().next()) {
            Some(&id) => self.pages_of(id).collect(),
            None => [page].into_iter().collect(),
        }
    }

    /// Export the registry in deterministic order (checkpoint capture).
    pub fn capture(&self) -> ClusterCapture {
        let mut clusters: Vec<(ClusterId, Vec<Vpn>)> = self
            .clusters
            .iter()
            .map(|(&id, c)| (id, c.pages.iter().copied().collect()))
            .collect();
        clusters.sort_by_key(|&(id, _)| id);
        ClusterCapture {
            clusters,
            next_id: self.next_id,
            auto_size: self.auto_size,
            auto_current: self.auto_current,
        }
    }

    /// Rebuild a registry from a capture, re-deriving the reverse index.
    pub fn restore(capture: &ClusterCapture) -> ClusterMap {
        let mut map = ClusterMap {
            next_id: capture.next_id,
            auto_size: capture.auto_size,
            auto_current: capture.auto_current,
            ..ClusterMap::default()
        };
        for (id, pages) in &capture.clusters {
            map.clusters.insert(
                *id,
                Cluster {
                    pages: pages.iter().copied().collect(),
                },
            );
            for &page in pages {
                map.by_page.entry(page).or_default().insert(*id);
            }
        }
        map
    }

    /// Check the paper's residency invariant against a residency oracle:
    /// every non-resident page has at least one cluster, containing it,
    /// whose pages are all non-resident. Pages in no cluster trivially
    /// satisfy it (they are their own cluster).
    pub fn invariant_holds(&self, mut resident: impl FnMut(Vpn) -> bool) -> bool {
        for (&page, ids) in &self.by_page {
            if resident(page) {
                continue;
            }
            let ok = ids
                .iter()
                .any(|id| self.pages_of(*id).all(|p| !resident(p)));
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vpns(list: &[u64]) -> Vec<Vpn> {
        list.iter().map(|&n| Vpn(n)).collect()
    }

    #[test]
    fn table1_api_roundtrip() {
        let mut map = ClusterMap::default();
        let ids = map.ay_init_clusters(2, 4);
        assert_eq!(ids.len(), 2);
        map.ay_add_page(ids[0], Vpn(1)).expect("add");
        map.ay_add_page(ids[0], Vpn(2)).expect("add");
        map.ay_add_page(ids[1], Vpn(2)).expect("shared page");
        assert_eq!(map.ay_get_cluster_ids(Vpn(2)), vec![ids[0], ids[1]]);
        map.ay_remove_page(ids[0], Vpn(2)).expect("remove");
        assert_eq!(map.ay_get_cluster_ids(Vpn(2)), vec![ids[1]]);
        map.ay_release_clusters();
        assert!(map.ay_get_cluster_ids(Vpn(1)).is_empty());
    }

    #[test]
    fn add_to_unknown_cluster_fails() {
        let mut map = ClusterMap::default();
        assert!(matches!(
            map.ay_add_page(ClusterId(99), Vpn(1)),
            Err(RtError::BadCluster(_))
        ));
    }

    #[test]
    fn fetch_set_of_unclustered_page_is_singleton() {
        let map = ClusterMap::default();
        let set = map.fetch_set(Vpn(9));
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vpns(&[9]));
    }

    #[test]
    fn fetch_set_is_whole_cluster() {
        let mut map = ClusterMap::default();
        let ids = map.ay_init_clusters(1, 0);
        for n in [1, 2, 3] {
            map.ay_add_page(ids[0], Vpn(n)).expect("add");
        }
        assert_eq!(
            map.fetch_set(Vpn(2)).into_iter().collect::<Vec<_>>(),
            vpns(&[1, 2, 3])
        );
    }

    #[test]
    fn fetch_set_transitively_closes_shared_pages() {
        // A = {1,2}, B = {2,3}, C = {3,4}, D = {9} (disconnected).
        let mut map = ClusterMap::default();
        let ids = map.ay_init_clusters(4, 0);
        map.ay_add_page(ids[0], Vpn(1)).expect("add");
        map.ay_add_page(ids[0], Vpn(2)).expect("add");
        map.ay_add_page(ids[1], Vpn(2)).expect("add");
        map.ay_add_page(ids[1], Vpn(3)).expect("add");
        map.ay_add_page(ids[2], Vpn(3)).expect("add");
        map.ay_add_page(ids[2], Vpn(4)).expect("add");
        map.ay_add_page(ids[3], Vpn(9)).expect("add");
        assert_eq!(
            map.fetch_set(Vpn(1)).into_iter().collect::<Vec<_>>(),
            vpns(&[1, 2, 3, 4]),
            "closure must follow chains of shared pages"
        );
        assert_eq!(
            map.fetch_set(Vpn(9)).into_iter().collect::<Vec<_>>(),
            vpns(&[9])
        );
    }

    #[test]
    fn evict_set_is_one_cluster() {
        let mut map = ClusterMap::default();
        let ids = map.ay_init_clusters(2, 0);
        map.ay_add_page(ids[0], Vpn(1)).expect("add");
        map.ay_add_page(ids[0], Vpn(2)).expect("add");
        map.ay_add_page(ids[1], Vpn(2)).expect("add");
        map.ay_add_page(ids[1], Vpn(3)).expect("add");
        let evict = map.evict_set(Vpn(1));
        assert_eq!(evict.into_iter().collect::<Vec<_>>(), vpns(&[1, 2]));
    }

    #[test]
    fn auto_clustering_fills_then_rolls_over() {
        let mut map = ClusterMap::default();
        map.ay_init_clusters(0, 3);
        let mut ids = Vec::new();
        for n in 0..7u64 {
            ids.push(
                map.auto_assign(Vpn(n))
                    .expect("add ok")
                    .expect("auto enabled"),
            );
        }
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
        assert_ne!(ids[2], ids[3], "fourth page starts a new cluster");
        assert_eq!(ids[3], ids[5]);
        assert_ne!(ids[5], ids[6]);
    }

    #[test]
    fn auto_disabled_returns_none() {
        let mut map = ClusterMap::default();
        assert!(map.auto_assign(Vpn(1)).expect("add ok").is_none());
    }

    #[test]
    fn merge_underfull_compacts() {
        let mut map = ClusterMap::default();
        map.ay_init_clusters(0, 4);
        // id0 fills with pages 0-3, id1 gets 4-5.
        for n in 0..6u64 {
            map.auto_assign(Vpn(n)).expect("add ok");
        }
        // Freeing pages 2 and 3 leaves id0 under-full alongside id1.
        let id0 = map.ay_get_cluster_ids(Vpn(0))[0];
        map.ay_remove_page(id0, Vpn(2)).expect("rm");
        map.ay_remove_page(id0, Vpn(3)).expect("rm");
        let merged = map
            .merge_underfull()
            .expect("merge ok")
            .expect("two underfull clusters");
        assert_eq!(map.cluster_len(merged), 4, "merged cluster full again");
    }

    #[test]
    fn invariant_checker_detects_violation() {
        let mut map = ClusterMap::default();
        let ids = map.ay_init_clusters(1, 0);
        map.ay_add_page(ids[0], Vpn(1)).expect("add");
        map.ay_add_page(ids[0], Vpn(2)).expect("add");
        // Both non-resident: invariant holds.
        assert!(map.invariant_holds(|_| false));
        // Page 1 resident, page 2 not: page 2's only cluster has a resident
        // member — a fault on 2 would uniquely identify it. Violation.
        assert!(!map.invariant_holds(|v| v == Vpn(1)));
        // Both resident: fine.
        assert!(map.invariant_holds(|_| true));
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut map = ClusterMap::default();
        map.ay_init_clusters(2, 3);
        for n in 0..5u64 {
            map.auto_assign(Vpn(n)).expect("add ok");
        }
        let capture = map.capture();
        let restored = ClusterMap::restore(&capture);
        assert_eq!(restored.capture(), capture, "capture is canonical");
        // Reverse index rebuilt: fetch/evict sets and the allocator's
        // current auto-cluster behave identically.
        assert_eq!(restored.fetch_set(Vpn(1)), map.fetch_set(Vpn(1)));
        assert_eq!(restored.evict_set(Vpn(4)), map.evict_set(Vpn(4)));
        let mut a = map;
        let mut b = restored;
        assert_eq!(
            a.auto_assign(Vpn(100)).expect("add ok"),
            b.auto_assign(Vpn(100)).expect("add ok"),
        );
    }

    #[test]
    fn invariant_with_shared_pages() {
        // A = {1,2}, B = {2,3}, pages 1 and 2 resident. Page 3 is
        // non-resident while its only cluster (B) has a resident member —
        // a fault on 3 would uniquely identify it. Adding a fully
        // non-resident cluster C = {3} restores the invariant.
        let mut map = ClusterMap::default();
        let ids = map.ay_init_clusters(3, 0);
        map.ay_add_page(ids[0], Vpn(1)).expect("add");
        map.ay_add_page(ids[0], Vpn(2)).expect("add");
        map.ay_add_page(ids[1], Vpn(2)).expect("add");
        map.ay_add_page(ids[1], Vpn(3)).expect("add");
        let resident = |v: Vpn| v == Vpn(1) || v == Vpn(2);
        assert!(!map.invariant_holds(resident));
        map.ay_add_page(ids[2], Vpn(3)).expect("add");
        assert!(map.invariant_holds(resident));
    }
}
