//! Software page sealing for the SGXv2 eviction path (paper §6).
//!
//! With SGXv2 dynamic memory instructions the runtime can evict pages
//! itself: it encrypts and signs the contents with its *own* key, parks
//! the blob in untrusted memory, trims the EPC page, and later restores it
//! with `EAUG`+`EACCEPTCOPY`. This is more flexible than `EWB`/`ELDU`
//! (custom encryption, skipping clean pages, alternate backing stores) at
//! the price of an extra enclave crossing — the trade-off Figure 5
//! quantifies.
//!
//! Anti-replay comes from a runtime-held version counter per page, bound
//! into the AEAD associated data; the OS returning an older blob fails
//! authentication.

use autarky_crypto::aead::{self, NONCE_LEN, TAG_LEN};
use autarky_sgx_sim::{Vpn, PAGE_SIZE};

/// Serialized software-sealed page: `version (8) || tag (16) || ciphertext`.
pub fn sw_seal(key: &[u8; 32], vpn: Vpn, version: u64, contents: &[u8]) -> Vec<u8> {
    debug_assert_eq!(contents.len(), PAGE_SIZE);
    let mut ciphertext = contents.to_vec();
    let nonce = sw_nonce(vpn, version);
    let aad = sw_aad(vpn, version);
    let tag = aead::seal(key, &nonce, &aad, &mut ciphertext);
    let mut out = Vec::with_capacity(8 + TAG_LEN + ciphertext.len());
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&tag);
    out.extend_from_slice(&ciphertext);
    out
}

/// Verify and decrypt a blob produced by [`sw_seal`]. `expected_version`
/// enforces freshness: an old-but-authentic blob is rejected as a replay.
pub fn sw_open(
    key: &[u8; 32],
    vpn: Vpn,
    expected_version: u64,
    blob: &[u8],
) -> Option<[u8; PAGE_SIZE]> {
    if blob.len() != 8 + TAG_LEN + PAGE_SIZE {
        return None;
    }
    let version = u64::from_le_bytes(blob[..8].try_into().ok()?);
    if version != expected_version {
        return None;
    }
    let tag: [u8; TAG_LEN] = blob[8..8 + TAG_LEN].try_into().ok()?;
    let mut ciphertext = blob[8 + TAG_LEN..].to_vec();
    let nonce = sw_nonce(vpn, version);
    let aad = sw_aad(vpn, version);
    aead::open(key, &nonce, &aad, &mut ciphertext, &tag).ok()?;
    let mut page = [0u8; PAGE_SIZE];
    page.copy_from_slice(&ciphertext);
    Some(page)
}

fn sw_nonce(vpn: Vpn, version: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..8].copy_from_slice(&version.to_le_bytes());
    nonce[8..].copy_from_slice(&(vpn.0 as u32).to_le_bytes());
    nonce
}

fn sw_aad(vpn: Vpn, version: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(16);
    aad.extend_from_slice(&vpn.0.to_le_bytes());
    aad.extend_from_slice(&version.to_le_bytes());
    aad
}

/// Untrusted-store key for a page's blob (per enclave id + page).
pub fn blob_key(eid_raw: u32, vpn: Vpn) -> u64 {
    ((eid_raw as u64) << 40) | (vpn.0 & 0xFF_FFFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [0x11; 32];

    fn page(byte: u8) -> [u8; PAGE_SIZE] {
        [byte; PAGE_SIZE]
    }

    #[test]
    fn roundtrip() {
        let blob = sw_seal(&KEY, Vpn(5), 3, &page(0x7C));
        let opened = sw_open(&KEY, Vpn(5), 3, &blob).expect("authentic");
        assert_eq!(opened, page(0x7C));
    }

    #[test]
    fn replay_of_old_version_rejected() {
        let old = sw_seal(&KEY, Vpn(5), 3, &page(1));
        let _new = sw_seal(&KEY, Vpn(5), 4, &page(2));
        assert!(
            sw_open(&KEY, Vpn(5), 4, &old).is_none(),
            "stale blob must fail"
        );
    }

    #[test]
    fn wrong_page_rejected() {
        let blob = sw_seal(&KEY, Vpn(5), 3, &page(1));
        assert!(sw_open(&KEY, Vpn(6), 3, &blob).is_none());
    }

    #[test]
    fn tamper_rejected() {
        let mut blob = sw_seal(&KEY, Vpn(5), 3, &page(1));
        blob[40] ^= 1;
        assert!(sw_open(&KEY, Vpn(5), 3, &blob).is_none());
    }

    #[test]
    fn truncated_blob_rejected() {
        let blob = sw_seal(&KEY, Vpn(5), 3, &page(1));
        assert!(sw_open(&KEY, Vpn(5), 3, &blob[..100]).is_none());
    }

    #[test]
    fn blob_keys_distinct_across_enclaves() {
        assert_ne!(blob_key(1, Vpn(5)), blob_key(2, Vpn(5)));
        assert_ne!(blob_key(1, Vpn(5)), blob_key(1, Vpn(6)));
    }
}
