//! End-to-end tests of the trusted runtime against the simulated OS and
//! hardware: self-paging correctness, attack detection, policy behaviour,
//! and both paging mechanisms.

use autarky_os_sim::{EnclaveImage, Os};
use autarky_runtime::{PagingMechanism, PolicyMode, RateLimit, RtError, Runtime, RuntimeConfig};
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::{EnclaveId, Vpn, PAGE_SIZE};

fn image(name: &str) -> EnclaveImage {
    let mut img = EnclaveImage::named(name);
    img.self_paging = true;
    img.code_pages = 4;
    img.data_pages = 8;
    img.stack_pages = 2;
    img.heap_pages = 64;
    img
}

fn setup(config: RuntimeConfig) -> (Os, EnclaveId, Runtime) {
    setup_with(
        MachineConfig {
            epc_frames: 512,
            ..Default::default()
        },
        config,
    )
}

fn setup_with(mconfig: MachineConfig, config: RuntimeConfig) -> (Os, EnclaveId, Runtime) {
    let mut os = Os::new(mconfig);
    let eid = os.load_enclave(&image("rt-test")).expect("load");
    let rt = Runtime::attach(&mut os, eid, config).expect("attach");
    (os, eid, rt)
}

#[test]
fn plain_read_write_no_faults() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig::default());
    let img = image("rt-test");
    let va = img.data_start().base();
    rt.write(&mut os, va, &[1, 2, 3, 4]).expect("write");
    let mut buf = [0u8; 4];
    rt.read(&mut os, va, &mut buf).expect("read");
    assert_eq!(buf, [1, 2, 3, 4]);
    assert_eq!(rt.stats.faults_handled, 0, "resident pages never fault");
}

#[test]
fn self_paging_roundtrip_sgx1() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig::default());
    let img = image("rt-test");
    let page = img.data_start();
    rt.write(&mut os, page.base(), &[0xAB; 16]).expect("write");
    rt.evict_pages(&mut os, &[page]).expect("evict");
    assert_eq!(rt.residency(page), Some(false));
    // The next access faults; the handler fetches the page back.
    let mut buf = [0u8; 16];
    rt.read(&mut os, page.base(), &mut buf)
        .expect("read with self-paging");
    assert_eq!(buf, [0xAB; 16]);
    assert_eq!(rt.residency(page), Some(true));
    assert!(rt.stats.faults_handled >= 1);
    assert!(rt.stats.pages_fetched >= 1);
}

#[test]
fn self_paging_roundtrip_sgx2() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig {
        mechanism: PagingMechanism::Sgx2,
        ..Default::default()
    });
    let img = image("rt-test");
    let page = img.data_start();
    rt.write(&mut os, page.base(), &[0xCD; 16]).expect("write");
    rt.evict_pages(&mut os, &[page]).expect("sw evict");
    assert_eq!(rt.residency(page), Some(false));
    let mut buf = [0u8; 16];
    rt.read(&mut os, page.base(), &mut buf)
        .expect("read via EAUG/EACCEPTCOPY");
    assert_eq!(buf, [0xCD; 16]);
}

#[test]
fn sgx2_replay_detected() {
    let (mut os, eid, mut rt) = setup(RuntimeConfig {
        mechanism: PagingMechanism::Sgx2,
        ..Default::default()
    });
    let img = image("rt-test");
    let page = img.data_start();
    rt.write(&mut os, page.base(), &[1; 8]).expect("write v1");
    rt.evict_pages(&mut os, &[page]).expect("evict v1");
    // The OS squirrels away the version-1 blob.
    let key = autarky_runtime::paging::blob_key(eid.0, page);
    let old_blob = os.sys_untrusted_read(key).expect("blob exists");
    // Legitimate fetch + re-evict bumps the version.
    let mut buf = [0u8; 8];
    rt.read(&mut os, page.base(), &mut buf).expect("fetch v1");
    rt.write(&mut os, page.base(), &[2; 8]).expect("write v2");
    rt.evict_pages(&mut os, &[page]).expect("evict v2");
    // The OS replays the stale blob.
    os.sys_untrusted_write(key, old_blob);
    let err = rt
        .read(&mut os, page.base(), &mut buf)
        .expect_err("replay must fail");
    assert!(matches!(err, RtError::SealBroken(_)), "got {err}");
}

#[test]
fn budget_forces_eviction_and_fifo() {
    let img = image("rt-test");
    let (mut os, _eid, mut rt) = setup(RuntimeConfig {
        budget: 20,
        ..Default::default()
    });
    // Claimed image pages: 4 code + 8 data + 2 stack = 14 resident.
    assert_eq!(rt.resident_pages(), 14);
    // Allocate heap pages until evictions must occur.
    let bytes = 12 * PAGE_SIZE;
    let _va = rt.malloc(&mut os, bytes).expect("alloc 12 pages");
    assert!(rt.resident_pages() <= 20, "budget respected");
    assert!(rt.stats.pages_evicted > 0, "older pages evicted");
    let _ = img;
}

#[test]
fn cluster_fetch_brings_whole_cluster() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig::default());
    let img = image("rt-test");
    let pages: Vec<Vpn> = (img.data_start().0..img.data_start().0 + 4)
        .map(Vpn)
        .collect();
    let cluster = rt.clusters.new_cluster();
    for &p in &pages {
        rt.clusters.ay_add_page(cluster, p).expect("add");
    }
    rt.evict_pages(&mut os, &pages).expect("evict cluster");
    for &p in &pages {
        assert_eq!(rt.residency(p), Some(false));
    }
    assert!(rt.cluster_invariant_holds());
    // Fault on ONE page: the whole cluster must come back, so the OS
    // cannot tell which page was touched.
    let mut buf = [0u8; 1];
    rt.read(&mut os, pages[2].base(), &mut buf).expect("fetch");
    for &p in &pages {
        assert_eq!(rt.residency(p), Some(true), "{p} must be co-fetched");
    }
    assert!(rt.cluster_invariant_holds());
    // The adversary's view: the fetch syscall named all 4 pages.
    let fetched: Vec<Vpn> = os
        .observations_since(0)
        .iter()
        .filter_map(|o| match o {
            autarky_os_sim::Observation::FetchSyscall { pages, .. } => Some(pages.clone()),
            _ => None,
        })
        .next_back()
        .expect("a fetch happened");
    assert_eq!(fetched.len(), 4, "anonymity set is the whole cluster");
}

#[test]
fn fault_tracer_attack_detected_and_enclave_terminated() {
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default());
    let img = image("rt-test");
    let target = img.data_start();
    // The OS unmaps a resident enclave-managed page to trace accesses.
    os.arm_fault_tracer(eid, [target]).expect("arm");
    let err = rt
        .read(&mut os, target.base(), &mut [0u8; 1])
        .expect_err("the handler must detect the attack");
    assert!(
        matches!(err, RtError::AttackDetected { vpn, .. } if vpn == target),
        "got {err}"
    );
    assert!(rt.is_terminated());
    assert!(os.machine.is_terminated(eid));
    // The attacker learned nothing attributable.
    if let autarky_os_sim::Attacker::FaultTracer(t) = &os.attacker {
        assert!(t.trace.is_empty());
        assert_eq!(t.masked_faults, 1);
    } else {
        panic!("tracer still armed");
    }
    // Terminated enclaves refuse further work.
    assert!(matches!(
        rt.read(&mut os, target.base(), &mut [0u8; 1]),
        Err(RtError::Terminated)
    ));
}

#[test]
fn ad_bit_attack_detected() {
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default());
    let img = image("rt-test");
    let target = img.data_start();
    os.arm_ad_monitor(eid, [target]).expect("arm");
    let err = rt
        .read(&mut os, target.base(), &mut [0u8; 1])
        .expect_err("A/D-bit clearing must be detected");
    assert!(
        matches!(err, RtError::AttackDetected { why, .. } if why.contains("accessed/dirty")),
        "got {err}"
    );
    // The monitor's poll finds nothing: the bits were never set.
    os.attacker_poll();
    if let autarky_os_sim::Attacker::AdMonitor(m) = &os.attacker {
        assert!(m.trace.is_empty(), "no A/D bits leaked");
    } else {
        panic!("monitor still armed");
    }
}

#[test]
fn pin_all_treats_any_tracked_fault_as_attack() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig {
        mode: PolicyMode::PinAll,
        ..Default::default()
    });
    let img = image("rt-test");
    let page = img.data_start();
    rt.evict_pages(&mut os, &[page])
        .expect("evict (test setup)");
    let err = rt
        .read(&mut os, page.base(), &mut [0u8; 1])
        .expect_err("PinAll tolerates no faults");
    assert!(matches!(err, RtError::AttackDetected { .. }));
}

#[test]
fn rate_limit_trips_and_terminates() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig {
        rate_limit: Some(RateLimit {
            max_faults_per_progress: 1.0,
            burst: 4,
        }),
        budget: 15, // small: forces heavy paging
        ..Default::default()
    });
    let img = image("rt-test");
    // Thrash two pages with no progress: the limiter must trip.
    let a = img.data_start();
    let mut err = None;
    for _ in 0..64 {
        let target = a;
        rt.evict_pages(&mut os, &[target]).expect("evict");
        match rt.read(&mut os, target.base(), &mut [0u8; 1]) {
            Ok(()) => {}
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    assert!(
        matches!(err, Some(RtError::RateLimitExceeded)),
        "got {err:?}"
    );
    assert!(rt.is_terminated());
}

#[test]
fn progress_keeps_rate_limited_enclave_alive() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig {
        rate_limit: Some(RateLimit {
            max_faults_per_progress: 2.0,
            burst: 4,
        }),
        ..Default::default()
    });
    let img = image("rt-test");
    let a = img.data_start();
    for _ in 0..64 {
        rt.progress(1); // the server "does work" between faults
        rt.evict_pages(&mut os, &[a]).expect("evict");
        rt.read(&mut os, a.base(), &mut [0u8; 1])
            .expect("stays below bound");
    }
}

#[test]
fn os_managed_fault_forwarded_not_fatal() {
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default());
    let img = image("rt-test");
    // Declare a heap page OS-managed (insensitive buffer, §7.3 libjpeg),
    // allocate + accept it, and let the OS page it out silently.
    let heap_page = img.heap_start();
    os.ay_set_os_managed(eid, &[heap_page])
        .expect("declare os-managed");
    os.ay_alloc_pages(eid, &[heap_page]).expect("alloc");
    os.machine.eaccept(eid, heap_page).expect("accept");
    os.machine
        .write_bytes(eid, 0, heap_page.base(), &[9u8; 4])
        .expect("write");
    // OS evicts it behind the enclave's back — allowed for os-managed.
    os.evict_os_page(eid, heap_page).expect("os evicts");
    // The enclave's next access faults; the handler forwards it to the
    // OS instead of treating it as an attack.
    let mut buf = [0u8; 4];
    rt.read(&mut os, heap_page.base(), &mut buf)
        .expect("forwarded fetch succeeds");
    assert_eq!(buf, [9u8; 4]);
    assert_eq!(rt.stats.forwarded, 1);
    assert!(!rt.is_terminated());
}

#[test]
fn allocator_lazily_allocates_and_auto_clusters() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig {
        auto_cluster_size: 4,
        ..Default::default()
    });
    let va = rt.malloc(&mut os, 6 * PAGE_SIZE).expect("alloc 6 pages");
    assert_eq!(rt.stats.pages_allocated, 6);
    // Pages landed in auto clusters of 4.
    let first = va.vpn();
    let ids = rt.clusters.ay_get_cluster_ids(first);
    assert_eq!(ids.len(), 1);
    assert_eq!(rt.clusters.cluster_len(ids[0]), 4);
    // Data is usable.
    rt.write(&mut os, va, &[5u8; 64]).expect("write");
    let mut buf = [0u8; 64];
    rt.read(&mut os, va, &mut buf).expect("read");
    assert_eq!(buf, [5u8; 64]);
}

#[test]
fn free_list_reuses_allocations() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig::default());
    let a = rt.malloc(&mut os, 256).expect("a");
    rt.free(a, 256);
    let b = rt.malloc(&mut os, 256).expect("b");
    assert_eq!(a, b, "free list must recycle");
}

#[test]
fn elide_aex_path_works_and_is_cheaper() {
    let img = image("rt-test");
    let page = img.data_start();

    let run = |elide: bool| -> u64 {
        let (mut os, _eid, mut rt) = setup_with(
            MachineConfig {
                epc_frames: 512,
                elide_aex: elide,
                ..Default::default()
            },
            RuntimeConfig::default(),
        );
        rt.write(&mut os, page.base(), &[7; 8]).expect("write");
        let start = os.machine.clock.now();
        for _ in 0..32 {
            rt.evict_pages(&mut os, &[page]).expect("evict");
            rt.read(&mut os, page.base(), &mut [0u8; 8]).expect("fetch");
        }
        os.machine.clock.now() - start
    };
    let normal = run(false);
    let elided = run(true);
    assert!(
        elided < normal,
        "AEX elision must be faster: {elided} vs {normal} cycles"
    );
    // The savings must be roughly the transition costs per fault.
    let costs = autarky_sgx_sim::CostModel::default();
    let saved_per_fault = (normal - elided) / 32;
    let expected = costs.preemption() + costs.handler_invocation() + costs.os_fault_handler;
    assert!(
        (saved_per_fault as i64 - expected as i64).unsigned_abs() < expected / 2,
        "saved {saved_per_fault} per fault, expected ≈{expected}"
    );
}

#[test]
fn no_upcall_variant_is_cheaper_than_measured() {
    let img = image("rt-test");
    let page = img.data_start();
    let run = |no_upcall: bool| -> u64 {
        let (mut os, _eid, mut rt) = setup_with(
            MachineConfig {
                epc_frames: 512,
                elide_handler_invocation: no_upcall,
                ..Default::default()
            },
            RuntimeConfig::default(),
        );
        rt.write(&mut os, page.base(), &[7; 8]).expect("write");
        let start = os.machine.clock.now();
        for _ in 0..32 {
            rt.evict_pages(&mut os, &[page]).expect("evict");
            rt.read(&mut os, page.base(), &mut [0u8; 8]).expect("fetch");
        }
        os.machine.clock.now() - start
    };
    let measured = run(false);
    let no_upcall = run(true);
    assert!(no_upcall < measured);
}

#[test]
fn suspended_enclave_resumes_without_attack_verdict() {
    // Whole-enclave swap is legal: all pages return before resumption, so
    // the runtime sees no unexpected faults afterwards.
    let (mut os, eid, mut rt) = setup(RuntimeConfig::default());
    let img = image("rt-test");
    let page = img.data_start();
    rt.write(&mut os, page.base(), &[3; 8]).expect("write");
    os.suspend_enclave(eid).expect("suspend");
    os.resume_enclave(eid).expect("resume");
    let mut buf = [0u8; 8];
    rt.read(&mut os, page.base(), &mut buf)
        .expect("no faults after resume");
    assert_eq!(buf, [3; 8]);
    assert!(!rt.is_terminated());
}

#[test]
fn per_library_code_clusters_share_dependency_pages() {
    // libjpeg and the app both call into libc; a fault on either must
    // co-fetch libc, and the transitive rule must pull in every cluster
    // sharing those pages.
    let mut img = EnclaveImage::named("libs");
    img.code_pages = 12;
    img.heap_pages = 16;
    let libc = img.add_library("libc", 4, &[]);
    let libjpeg = img.add_library("libjpeg", 4, &[libc]);
    let app = img.add_library("app", 4, &[libc, libjpeg]);
    let mut os = Os::new(MachineConfig {
        epc_frames: 512,
        ..Default::default()
    });
    let eid = os.load_enclave(&img).expect("load");
    let mut rt = Runtime::attach(&mut os, eid, RuntimeConfig::default()).expect("attach");

    // libc's pages are shared by all three clusters.
    let libc_page = img.library_pages(libc)[0];
    assert_eq!(rt.clusters.ay_get_cluster_ids(libc_page).len(), 3);
    // The app's pages are in exactly its own cluster.
    let app_page = img.library_pages(app)[0];
    assert_eq!(rt.clusters.ay_get_cluster_ids(app_page).len(), 1);

    // Evict everything code-related (one cluster at a time is safe).
    let all_code: Vec<Vpn> = img.code_range().collect();
    rt.evict_pages(&mut os, &all_code).expect("evict code");
    assert!(rt.cluster_invariant_holds());

    // Executing one libjpeg instruction faults; the fetch set must cover
    // the transitive closure: libjpeg + libc + (via shared libc pages)
    // the app cluster as well.
    rt.exec(&mut os, img.library_pages(libjpeg)[0].base())
        .expect("exec faults and fetches");
    for vpn in img.code_range() {
        assert_eq!(rt.residency(vpn), Some(true), "{vpn} must be co-fetched");
    }
    assert!(rt.cluster_invariant_holds());
}

#[test]
fn cooperative_budget_shrink_evicts_down() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig {
        budget: 64,
        ..Default::default()
    });
    let before = rt.resident_pages();
    assert!(before > 8);
    rt.shrink_budget(&mut os, 8).expect("shrink");
    assert!(
        rt.resident_pages() <= 8,
        "resident {} after shrink",
        rt.resident_pages()
    );
    // The enclave still runs correctly afterwards.
    let img = image("rt-test");
    let mut buf = [0u8; 4];
    rt.read(&mut os, img.data_start().base(), &mut buf)
        .expect("read pages back");
    assert!(!rt.is_terminated());
}

#[test]
fn sgx2_paging_preserves_code_page_permissions() {
    // Regression: the SGXv2 software path must restore a code page as
    // executable, or its next instruction fetch looks like an attack.
    let (mut os, _eid, mut rt) = setup(RuntimeConfig {
        mechanism: PagingMechanism::Sgx2,
        cluster_code: true,
        ..Default::default()
    });
    let img = image("rt-test");
    let code_page = img.code_start();
    rt.exec(&mut os, code_page.base())
        .expect("code runs while resident");
    // Evict the whole code cluster via the software path.
    let code: Vec<Vpn> = img.code_range().collect();
    rt.evict_pages(&mut os, &code).expect("sw evict code");
    assert_eq!(rt.residency(code_page), Some(false));
    // Executing again must fault, refetch, and RUN — not die as an attack.
    rt.exec(&mut os, code_page.base())
        .expect("refetched code page must be executable again");
    assert!(!rt.is_terminated());
}

#[test]
fn checkpoint_codec_round_trips_byte_identically() {
    let (mut os, _eid, mut rt) = setup(RuntimeConfig {
        mechanism: PagingMechanism::Sgx2,
        rate_limit: Some(RateLimit {
            max_faults_per_progress: 8.0,
            burst: 32,
        }),
        budget: 24,
        ..Default::default()
    });
    let img = image("rt-test");
    let page = img.data_start();
    // Exercise enough machinery to populate every state section: paging
    // (tracked/fifo/sw_versions/sw_perms), the allocator (heap free
    // lists), clusters, the limiter, and telemetry spans.
    rt.write(&mut os, page.base(), &[0x5A; 32]).expect("write");
    rt.evict_pages(&mut os, &[page]).expect("evict");
    let mut buf = [0u8; 32];
    rt.read(&mut os, page.base(), &mut buf).expect("fault back");
    let va = rt.malloc(&mut os, PAGE_SIZE * 3).expect("malloc");
    rt.free(va, PAGE_SIZE * 3);
    rt.progress(7);

    let blob = rt.capture_bytes();
    let restored = Runtime::restore_from_bytes(&blob).expect("decode");
    // Re-encoding the restored runtime must reproduce the blob exactly —
    // this covers every field the codec carries, including telemetry.
    assert_eq!(restored.capture_bytes(), blob, "byte-identical re-encode");
    assert_eq!(restored.stats.faults_handled, rt.stats.faults_handled);
    assert_eq!(restored.stats.pages_fetched, rt.stats.pages_fetched);
    assert_eq!(restored.resident_pages(), rt.resident_pages());
    assert_eq!(restored.residency(page), rt.residency(page));
}

#[test]
fn checkpoint_codec_rejects_malformed_blobs() {
    let (mut _os, _eid, rt) = setup(RuntimeConfig::default());
    let blob = rt.capture_bytes();
    assert!(Runtime::restore_from_bytes(&[]).is_none(), "empty");
    assert!(
        Runtime::restore_from_bytes(&blob[..blob.len() - 1]).is_none(),
        "truncated"
    );
    let mut bad_magic = blob.clone();
    bad_magic[0] ^= 0xFF;
    assert!(Runtime::restore_from_bytes(&bad_magic).is_none(), "magic");
    let mut bad_version = blob.clone();
    bad_version[4] = 9;
    assert!(
        Runtime::restore_from_bytes(&bad_version).is_none(),
        "version"
    );
    let mut trailing = blob.clone();
    trailing.push(0);
    assert!(
        Runtime::restore_from_bytes(&trailing).is_none(),
        "trailing bytes"
    );
}
