//! Architectural edge cases: multi-TCS behaviour, lifecycle ordering,
//! permission interplay between PTE and EPCM, and seal/attestation
//! boundaries.

use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::pagetable::Pte;
use autarky_sgx_sim::{
    AccessError, Attributes, Machine, PageType, Perms, SgxError, Va, Vpn, PAGE_SIZE,
};

fn machine() -> Machine {
    Machine::new(MachineConfig::default())
}

fn build(
    machine: &mut Machine,
    self_paging: bool,
    tcs_count: usize,
    pages: u64,
) -> autarky_sgx_sim::EnclaveId {
    let base = Va(0x40_0000);
    let eid = machine.ecreate(
        base,
        (tcs_count as u64 + pages) * PAGE_SIZE as u64,
        Attributes {
            self_paging,
            debug: false,
        },
    );
    for i in 0..tcs_count as u64 {
        machine
            .eadd(eid, Vpn(base.vpn().0 + i), PageType::Tcs, Perms::RW, None)
            .expect("tcs");
    }
    for i in 0..pages {
        let vpn = Vpn(base.vpn().0 + tcs_count as u64 + i);
        let frame = machine
            .eadd(eid, vpn, PageType::Reg, Perms::RW, None)
            .expect("eadd");
        machine.page_table_mut(eid).expect("pt").map(
            vpn,
            Pte {
                present: true,
                frame,
                perms: Perms::RW,
                accessed: true,
                dirty: true,
            },
        );
    }
    machine.einit(eid).expect("einit");
    eid
}

#[test]
fn pending_exception_flags_are_per_tcs() {
    let mut m = machine();
    let eid = build(&mut m, true, 2, 4);
    m.eenter(eid, 0).expect("enter tcs0");
    m.eenter(eid, 1).expect("enter tcs1");
    let data = Vpn(0x402);
    m.page_table_mut(eid).expect("pt").clear_present(data);
    m.tlb_shootdown(eid, data);
    // TCS 0 faults.
    let err = m.read_bytes(eid, 0, data.base(), &mut [0u8; 1]);
    assert!(matches!(err, Err(AccessError::Fault(_))));
    assert!(m.pending_exception(eid, 0).expect("tcs0"));
    assert!(
        !m.pending_exception(eid, 1).expect("tcs1"),
        "flag is per-TCS"
    );
    // TCS 1 can still be resumed/entered freely; TCS 0 cannot resume.
    assert_eq!(m.eresume(eid, 0), Err(SgxError::ResumeBlocked));
    m.eenter(eid, 1).expect("tcs1 unaffected");
}

#[test]
fn eadd_after_einit_rejected() {
    let mut m = machine();
    let eid = build(&mut m, false, 1, 2);
    assert_eq!(
        m.eadd(eid, Vpn(0x402), PageType::Reg, Perms::RW, None),
        Err(SgxError::LifecycleViolation),
        "initial pages are fixed at EINIT; growth must use EAUG"
    );
}

#[test]
fn double_einit_rejected() {
    let mut m = machine();
    let eid = build(&mut m, false, 1, 2);
    assert_eq!(m.einit(eid), Err(SgxError::LifecycleViolation));
}

#[test]
fn eenter_before_einit_rejected() {
    let mut m = machine();
    let base = Va(0x40_0000);
    let eid = m.ecreate(base, 4 * PAGE_SIZE as u64, Attributes::default());
    m.eadd(eid, base.vpn(), PageType::Tcs, Perms::RW, None)
        .expect("tcs");
    assert_eq!(m.eenter(eid, 0), Err(SgxError::LifecycleViolation));
}

#[test]
fn epcm_perms_bound_pte_perms() {
    // The OS maps a page RWX, but the EPCM granted only RW: execute must
    // fault even though the PTE allows it.
    let mut m = machine();
    let eid = build(&mut m, false, 1, 2);
    m.eenter(eid, 0).expect("enter");
    let vpn = Vpn(0x401);
    let frame = m.frame_of(eid, vpn).expect("frame");
    m.page_table_mut(eid).expect("pt").map(
        vpn,
        Pte {
            present: true,
            frame,
            perms: Perms::RWX,
            accessed: true,
            dirty: true,
        },
    );
    m.tlb_shootdown(eid, vpn);
    let err = m.fetch_code(eid, 0, vpn.base());
    assert!(
        matches!(err, Err(AccessError::Fault(_))),
        "EPCM must veto OS-granted execute: {err:?}"
    );
    // Plain reads still work.
    m.read_bytes(eid, 0, vpn.base(), &mut [0u8; 1])
        .expect("read allowed");
}

#[test]
fn enclaves_cannot_touch_each_others_frames() {
    let mut m = machine();
    let eid1 = build(&mut m, false, 1, 2);
    let base2 = Va(0x80_0000);
    let eid2 = m.ecreate(base2, 4 * PAGE_SIZE as u64, Attributes::default());
    m.eadd(eid2, base2.vpn(), PageType::Tcs, Perms::RW, None)
        .expect("tcs");
    let frame2 = m
        .eadd(eid2, Vpn(base2.vpn().0 + 1), PageType::Reg, Perms::RW, None)
        .expect("page");
    m.einit(eid2).expect("einit");
    // Enclave 1's OS mapping points at enclave 2's frame: EPCM mismatch.
    m.eenter(eid1, 0).expect("enter");
    let vpn = Vpn(0x401);
    m.page_table_mut(eid1).expect("pt").map(
        vpn,
        Pte {
            present: true,
            frame: frame2,
            perms: Perms::RW,
            accessed: true,
            dirty: true,
        },
    );
    m.tlb_shootdown(eid1, vpn);
    let err = m.read_bytes(eid1, 0, vpn.base(), &mut [0u8; 1]);
    assert!(
        matches!(err, Err(AccessError::Fault(_))),
        "cross-enclave mapping vetoed"
    );
}

#[test]
fn sealed_page_cannot_cross_enclaves() {
    let mut m = machine();
    let eid1 = build(&mut m, true, 1, 2);
    let eid2 = build_second(&mut m);
    let vpn = Vpn(0x401);
    m.eblock(eid1, vpn).expect("block");
    m.etrack(eid1).expect("track");
    let sealed = m.ewb(eid1, vpn).expect("ewb");
    assert_eq!(m.eldu(eid2, &sealed), Err(SgxError::SealBroken));
}

fn build_second(m: &mut Machine) -> autarky_sgx_sim::EnclaveId {
    let base = Va(0xC0_0000);
    let eid = m.ecreate(
        base,
        4 * PAGE_SIZE as u64,
        Attributes {
            self_paging: true,
            debug: false,
        },
    );
    m.eadd(eid, base.vpn(), PageType::Tcs, Perms::RW, None)
        .expect("tcs");
    m.einit(eid).expect("einit");
    eid
}

#[test]
fn read_only_epcm_page_rejects_writes() {
    let mut m = machine();
    let base = Va(0x40_0000);
    let eid = m.ecreate(base, 4 * PAGE_SIZE as u64, Attributes::default());
    m.eadd(eid, base.vpn(), PageType::Tcs, Perms::RW, None)
        .expect("tcs");
    let vpn = Vpn(base.vpn().0 + 1);
    let frame = m
        .eadd(eid, vpn, PageType::Reg, Perms::R, None)
        .expect("ro page");
    m.page_table_mut(eid).expect("pt").map(
        vpn,
        Pte {
            present: true,
            frame,
            perms: Perms::RW,
            accessed: true,
            dirty: true,
        },
    );
    m.einit(eid).expect("einit");
    m.eenter(eid, 0).expect("enter");
    m.read_bytes(eid, 0, vpn.base(), &mut [0u8; 1])
        .expect("read ok");
    let err = m.write_bytes(eid, 0, vpn.base(), &[1]);
    assert!(
        matches!(err, Err(AccessError::Fault(_))),
        "EPCM R-only page rejects writes"
    );
}

#[test]
fn tlb_caches_translations_across_pages_independently() {
    let mut m = machine();
    let eid = build(&mut m, false, 1, 4);
    m.eenter(eid, 0).expect("enter");
    for i in 0..4u64 {
        m.read_bytes(eid, 0, Va((0x401 + i) << 12), &mut [0u8; 1])
            .expect("read");
    }
    let (fills_a, _, _) = m.tlb_stats();
    for i in 0..4u64 {
        m.read_bytes(eid, 0, Va((0x401 + i) << 12), &mut [0u8; 1])
            .expect("read");
    }
    let (fills_b, hits_b, _) = m.tlb_stats();
    assert_eq!(fills_a, fills_b, "second sweep is all hits");
    assert!(hits_b >= 4);
}

#[test]
fn enclave_entry_flushes_tlb() {
    let mut m = machine();
    let eid = build(&mut m, false, 1, 2);
    m.eenter(eid, 0).expect("enter");
    m.read_bytes(eid, 0, Va(0x401 << 12), &mut [0u8; 1])
        .expect("read");
    let (fills_a, _, flushes_a) = m.tlb_stats();
    m.eexit(eid, 0).expect("exit");
    m.eenter(eid, 0).expect("re-enter");
    m.read_bytes(eid, 0, Va(0x401 << 12), &mut [0u8; 1])
        .expect("read");
    let (fills_b, _, flushes_b) = m.tlb_stats();
    assert!(flushes_b >= flushes_a + 2, "exit and entry each flush");
    assert_eq!(fills_b, fills_a + 1, "the translation had to be refilled");
}
