//! The OS-controlled page table.
//!
//! In SGX the enclave's address space is mapped by the *untrusted* OS using
//! ordinary x86 page tables; hardware then cross-checks mappings against the
//! EPCM. This module models one address space (one enclave-hosting process)
//! as a flat `vpn → PTE` map. All mutation goes through the OS — the
//! simulated hardware only reads PTEs during TLB fills and (for legacy
//! enclaves) writes back accessed/dirty bits.
//!
//! The controlled channel lives here: present bits, permissions, and A/D
//! bits are all OS-visible and OS-controllable state.

use std::collections::HashMap;

use crate::addr::{Frame, Vpn};
use crate::epc::Perms;

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Present bit. Clear ⇒ any access faults.
    pub present: bool,
    /// EPC frame this page maps to.
    pub frame: Frame,
    /// Permissions.
    pub perms: Perms,
    /// Accessed bit. For legacy enclaves the hardware sets this on TLB
    /// fill; under Autarky it must already be set or the fill faults.
    pub accessed: bool,
    /// Dirty bit (same contract as `accessed`, for writes).
    pub dirty: bool,
}

/// One process address space's page table.
#[derive(Debug, Default)]
pub struct PageTable {
    entries: HashMap<Vpn, Pte>,
}

impl PageTable {
    /// Create an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install or replace a mapping.
    pub fn map(&mut self, vpn: Vpn, pte: Pte) {
        self.entries.insert(vpn, pte);
    }

    /// Remove a mapping entirely.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        self.entries.remove(&vpn)
    }

    /// Read a PTE (hardware page walk or OS inspection).
    pub fn get(&self, vpn: Vpn) -> Option<Pte> {
        self.entries.get(&vpn).copied()
    }

    /// Mutably access a PTE (OS bit manipulation, hardware A/D writeback).
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.entries.get_mut(&vpn)
    }

    /// Clear the present bit (the original controlled-channel primitive).
    pub fn clear_present(&mut self, vpn: Vpn) -> bool {
        match self.entries.get_mut(&vpn) {
            Some(pte) => {
                pte.present = false;
                true
            }
            None => false,
        }
    }

    /// Set the present bit.
    pub fn set_present(&mut self, vpn: Vpn) -> bool {
        match self.entries.get_mut(&vpn) {
            Some(pte) => {
                pte.present = true;
                true
            }
            None => false,
        }
    }

    /// Clear accessed and dirty bits (the stealthier attack primitive of
    /// Wang et al. / Van Bulck et al.).
    pub fn clear_accessed_dirty(&mut self, vpn: Vpn) -> bool {
        match self.entries.get_mut(&vpn) {
            Some(pte) => {
                pte.accessed = false;
                pte.dirty = false;
                true
            }
            None => false,
        }
    }

    /// Number of installed mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all `(vpn, pte)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.entries.iter().map(|(&vpn, &pte)| (vpn, pte))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pte(frame: u32) -> Pte {
        Pte {
            present: true,
            frame: Frame(frame),
            perms: Perms::RW,
            accessed: true,
            dirty: true,
        }
    }

    #[test]
    fn map_get_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        pt.map(Vpn(5), pte(1));
        assert_eq!(pt.get(Vpn(5)).expect("mapped").frame, Frame(1));
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.unmap(Vpn(5)).expect("was mapped").frame, Frame(1));
        assert!(pt.get(Vpn(5)).is_none());
    }

    #[test]
    fn present_bit_toggles() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), pte(0));
        assert!(pt.clear_present(Vpn(1)));
        assert!(!pt.get(Vpn(1)).expect("mapped").present);
        assert!(pt.set_present(Vpn(1)));
        assert!(pt.get(Vpn(1)).expect("mapped").present);
        assert!(!pt.clear_present(Vpn(99)), "unmapped page");
    }

    #[test]
    fn ad_bits_clear() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), pte(0));
        assert!(pt.clear_accessed_dirty(Vpn(1)));
        let e = pt.get(Vpn(1)).expect("mapped");
        assert!(!e.accessed);
        assert!(!e.dirty);
    }
}
