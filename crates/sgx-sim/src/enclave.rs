//! Per-enclave hardware structures: SECS, attributes, TCS, SSA frames.
//!
//! In real SGX these live in dedicated EPC pages; the simulator models them
//! as plain structs owned by the machine (they are never addressable by the
//! OS, which is the property that matters).

use crate::addr::{Va, Vpn};
use crate::error::{AccessKind, FaultCause};

/// Attested enclave attribute flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attributes {
    /// Autarky's new attribute bit: the enclave opts into self-paging.
    /// Enables fault masking, the pending-exception flag, and the
    /// accessed/dirty-bit precondition (§5.1.1).
    pub self_paging: bool,
    /// Debug enclave (excluded from confidentiality guarantees; unused by
    /// the simulator's logic but part of the attested identity).
    pub debug: bool,
}

impl Attributes {
    /// Serialize for measurement/report binding.
    pub fn to_bytes(self) -> [u8; 2] {
        [self.self_paging as u8, self.debug as u8]
    }
}

/// SGX Enclave Control Structure: identity and extent of one enclave.
#[derive(Debug, Clone)]
pub struct Secs {
    /// Base linear address of the enclave region (ELRANGE).
    pub base: Va,
    /// Size of the enclave region in bytes.
    pub size: u64,
    /// Attested attributes.
    pub attributes: Attributes,
    /// MRENCLAVE: running/final measurement of the initial contents.
    pub measurement: [u8; 32],
    /// Whether `EINIT` has completed.
    pub initialized: bool,
    /// Set when the trusted runtime killed the enclave after detecting an
    /// attack; no further entries are possible.
    pub terminated: bool,
}

impl Secs {
    /// Whether `va` lies inside the enclave's linear range.
    pub fn contains(&self, va: Va) -> bool {
        va.0 >= self.base.0 && va.0 - self.base.0 < self.size
    }

    /// Whether the whole page `vpn` lies inside the enclave's range.
    pub fn contains_page(&self, vpn: Vpn) -> bool {
        self.contains(vpn.base())
            && self.contains(Va(vpn.base().0 + crate::addr::PAGE_SIZE as u64 - 1))
    }
}

/// Exception information saved in an SSA frame on AEX.
///
/// Unlike what the OS sees, this holds the *unmasked* fault address and
/// cause — only trusted in-enclave code can read it (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsaExInfo {
    /// True faulting address.
    pub va: Va,
    /// True access kind.
    pub kind: AccessKind,
    /// Architectural cause.
    pub cause: FaultCause,
}

/// One state-save-area frame (context + optional exception info).
#[derive(Debug, Clone, Copy)]
pub struct SsaFrame {
    /// Exception details, if this frame was pushed by a fault AEX.
    pub exinfo: Option<SsaExInfo>,
}

/// Thread control structure: one hardware entry slot into the enclave.
#[derive(Debug)]
pub struct Tcs {
    /// SSA stack; AEX pushes, `ERESUME` pops.
    pub ssa: Vec<SsaFrame>,
    /// Maximum SSA depth (NSSA); exceeding it makes the thread
    /// un-executable, so the runtime provisions enough to detect
    /// re-entrancy attacks (§5.3).
    pub nssa: usize,
    /// Autarky's pending-exception flag (§5.1.3): set by AEX on a page
    /// fault, cleared by `EENTER`, blocks `ERESUME` while set.
    pub pending_exception: bool,
    /// Whether a logical core currently executes on this TCS.
    pub active: bool,
}

impl Tcs {
    /// Create a TCS with the given SSA depth.
    pub fn new(nssa: usize) -> Self {
        Self {
            ssa: Vec::new(),
            nssa,
            pending_exception: false,
            active: false,
        }
    }

    /// Current SSA stack depth.
    pub fn ssa_depth(&self) -> usize {
        self.ssa.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_contains() {
        let secs = Secs {
            base: Va(0x10000),
            size: 0x2000,
            attributes: Attributes::default(),
            measurement: [0; 32],
            initialized: true,
            terminated: false,
        };
        assert!(secs.contains(Va(0x10000)));
        assert!(secs.contains(Va(0x11fff)));
        assert!(!secs.contains(Va(0x12000)));
        assert!(!secs.contains(Va(0xffff)));
        assert!(secs.contains_page(Vpn(0x10)));
        assert!(secs.contains_page(Vpn(0x11)));
        assert!(!secs.contains_page(Vpn(0x12)));
    }

    #[test]
    fn tcs_defaults() {
        let tcs = Tcs::new(4);
        assert_eq!(tcs.ssa_depth(), 0);
        assert!(!tcs.pending_exception);
        assert!(!tcs.active);
    }

    #[test]
    fn attributes_serialize_distinctly() {
        let a = Attributes {
            self_paging: true,
            debug: false,
        };
        let b = Attributes {
            self_paging: false,
            debug: false,
        };
        assert_ne!(a.to_bytes(), b.to_bytes());
    }
}
