//! Sealing of evicted EPC pages (`EWB`/`ELDU` crypto).
//!
//! `EWB` encrypts an evicted page and binds it to the enclave, the page's
//! linear address, and a monotonically increasing eviction *version*
//! (modeling the Version Array nonce that gives SGX its anti-replay
//! guarantee). `ELDU` rejects blobs whose authentication fails or whose
//! version does not match the outstanding one.

use autarky_crypto::aead::{self, AeadError, NONCE_LEN, TAG_LEN};

use crate::addr::{EnclaveId, Vpn, PAGE_SIZE};
use crate::epc::{PageData, Perms};

/// A page evicted from EPC, living in untrusted memory.
///
/// Everything in this struct is visible to the adversary; confidentiality
/// and integrity come only from the ciphertext/tag pair.
#[derive(Debug, Clone)]
pub struct SealedPage {
    /// Owning enclave (metadata, also authenticated).
    pub eid: EnclaveId,
    /// Linear page this blob backs.
    pub vpn: Vpn,
    /// Anti-replay version assigned at eviction.
    pub version: u64,
    /// Permissions to restore.
    pub perms: Perms,
    /// Encrypted page contents.
    pub ciphertext: Vec<u8>,
    /// Authentication tag over ciphertext and metadata.
    pub tag: [u8; TAG_LEN],
}

fn nonce_for(eid: EnclaveId, vpn: Vpn, version: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&eid.0.to_le_bytes());
    nonce[4..8].copy_from_slice(&(vpn.0 as u32).to_le_bytes());
    // Low 32 bits of the version; combined with the AAD (full version) this
    // keeps (key, nonce) pairs unique per eviction.
    nonce[8..12].copy_from_slice(&(version as u32).to_le_bytes());
    nonce
}

fn aad_for(eid: EnclaveId, vpn: Vpn, version: u64, perms: Perms) -> Vec<u8> {
    let mut aad = Vec::with_capacity(24);
    aad.extend_from_slice(&eid.0.to_le_bytes());
    aad.extend_from_slice(&vpn.0.to_le_bytes());
    aad.extend_from_slice(&version.to_le_bytes());
    aad.push(perms.r as u8);
    aad.push(perms.w as u8);
    aad.push(perms.x as u8);
    aad
}

/// Seal a page for eviction.
pub fn seal_page(
    key: &[u8; 32],
    eid: EnclaveId,
    vpn: Vpn,
    version: u64,
    perms: Perms,
    contents: &[u8; PAGE_SIZE],
) -> SealedPage {
    let mut ciphertext = contents.to_vec();
    let nonce = nonce_for(eid, vpn, version);
    let aad = aad_for(eid, vpn, version, perms);
    let tag = aead::seal(key, &nonce, &aad, &mut ciphertext);
    SealedPage {
        eid,
        vpn,
        version,
        perms,
        ciphertext,
        tag,
    }
}

/// Verify and decrypt a sealed page.
pub fn open_page(key: &[u8; 32], sealed: &SealedPage) -> Result<PageData, AeadError> {
    if sealed.ciphertext.len() != PAGE_SIZE {
        return Err(AeadError::TagMismatch);
    }
    let mut buf = sealed.ciphertext.clone();
    let nonce = nonce_for(sealed.eid, sealed.vpn, sealed.version);
    let aad = aad_for(sealed.eid, sealed.vpn, sealed.version, sealed.perms);
    aead::open(key, &nonce, &aad, &mut buf, &sealed.tag)?;
    Ok(buf.into_boxed_slice().try_into().expect("PAGE_SIZE bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epc::zeroed_page;

    const KEY: [u8; 32] = [0x42; 32];

    fn page_with(byte: u8) -> PageData {
        let mut p = zeroed_page();
        p[0] = byte;
        p[PAGE_SIZE - 1] = byte;
        p
    }

    #[test]
    fn roundtrip() {
        let page = page_with(0x7f);
        let sealed = seal_page(&KEY, EnclaveId(1), Vpn(5), 3, Perms::RW, &page);
        assert_ne!(&sealed.ciphertext[..], &page[..], "must be encrypted");
        let opened = open_page(&KEY, &sealed).expect("authentic");
        assert_eq!(&opened[..], &page[..]);
    }

    #[test]
    fn tamper_detected() {
        let page = page_with(1);
        let mut sealed = seal_page(&KEY, EnclaveId(1), Vpn(5), 3, Perms::RW, &page);
        sealed.ciphertext[100] ^= 0xff;
        assert!(open_page(&KEY, &sealed).is_err());
    }

    #[test]
    fn metadata_swap_detected() {
        // An attacker relocating a blob to a different page must fail.
        let page = page_with(1);
        let mut sealed = seal_page(&KEY, EnclaveId(1), Vpn(5), 3, Perms::RW, &page);
        sealed.vpn = Vpn(6);
        assert!(open_page(&KEY, &sealed).is_err());
    }

    #[test]
    fn version_swap_detected() {
        let page = page_with(1);
        let mut sealed = seal_page(&KEY, EnclaveId(1), Vpn(5), 3, Perms::RW, &page);
        sealed.version = 4;
        assert!(open_page(&KEY, &sealed).is_err());
    }

    #[test]
    fn perms_swap_detected() {
        let page = page_with(1);
        let mut sealed = seal_page(&KEY, EnclaveId(1), Vpn(5), 3, Perms::R, &page);
        sealed.perms = Perms::RWX;
        assert!(open_page(&KEY, &sealed).is_err());
    }

    #[test]
    fn distinct_versions_distinct_ciphertexts() {
        let page = page_with(1);
        let a = seal_page(&KEY, EnclaveId(1), Vpn(5), 1, Perms::RW, &page);
        let b = seal_page(&KEY, EnclaveId(1), Vpn(5), 2, Perms::RW, &page);
        assert_ne!(a.ciphertext, b.ciphertext);
    }
}
