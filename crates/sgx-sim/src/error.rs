//! Error and fault types for the SGX machine model.

use crate::addr::{EnclaveId, Va, Vpn};

/// The kind of memory access being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl AccessKind {
    /// True for accesses that require write permission.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Why a translation raised a page fault.
///
/// This is the *architectural* cause recorded in the (trusted) SSA frame.
/// What the OS sees is a separate, possibly masked, view: see
/// [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCause {
    /// PTE not present.
    NotPresent,
    /// PTE present but lacks the required permission.
    Permission,
    /// The EPCM rejected the mapping (wrong frame, wrong enclave, wrong
    /// linear address, or insufficient EPCM permissions).
    EpcmMismatch,
    /// The page is EBLOCKed, pending (`EAUG` not yet accepted), or trimmed.
    EpcmBlocked,
    /// Autarky accessed/dirty-bit precondition failed: the fetched PTE's
    /// A (or D, for a write) bit was clear for a self-paging enclave.
    AdBitsClear,
}

/// A page fault as observed at the architectural boundary.
///
/// `reported_va`/`reported_kind` are what the hardware exposes to the
/// untrusted OS. For a self-paging (Autarky) enclave this is always the
/// enclave base address and `Read` — the OS learns only *that* a fault
/// happened. For a legacy enclave it is the faulting page base (SGX already
/// masks the low 12 bits) and the true access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Enclave that faulted.
    pub eid: EnclaveId,
    /// TCS (hardware thread slot) that faulted.
    pub tcs: usize,
    /// Address reported to the OS (masked for self-paging enclaves).
    pub reported_va: Va,
    /// Access kind reported to the OS (masked for self-paging enclaves).
    pub reported_kind: AccessKind,
    /// Whether the fault bypassed the AEX/OS path entirely (the paper's
    /// proposed AEX-elision optimization). When true, the OS never saw the
    /// fault; control should go directly to the in-enclave handler.
    pub elided: bool,
}

/// Errors returned by machine operations (instruction faults, misuse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// No free EPC frames; the OS must evict before adding pages.
    EpcFull,
    /// Operation referenced an enclave id that does not exist.
    NoSuchEnclave(EnclaveId),
    /// Operation referenced an EPC frame that is not valid for it.
    InvalidFrame,
    /// Virtual address outside the enclave's linear range.
    OutOfRange(Va),
    /// The virtual page is not backed by a valid EPC mapping for this
    /// operation (e.g. `EWB` of an unmapped page).
    NoSuchPage(Vpn),
    /// The page must be blocked (`EBLOCK`) before this operation.
    NotBlocked(Vpn),
    /// A pending SGXv2 page change was required (or forbidden) for the
    /// requested operation.
    PendingStateMismatch(Vpn),
    /// `ERESUME` refused because the TCS pending-exception flag is set
    /// (the Autarky ISA change that removes silent fault resolution).
    ResumeBlocked,
    /// `EINIT` already performed, or operation requires an uninitialized
    /// enclave.
    LifecycleViolation,
    /// The TCS index does not exist or is busy.
    BadTcs(usize),
    /// Sealed-page authentication failed during `ELDU` (tampering or
    /// replay of evicted page contents).
    SealBroken,
    /// Anti-replay version mismatch during `ELDU`.
    Replay(Vpn),
    /// The enclave has been terminated (by its runtime, after detecting an
    /// attack) and can no longer be entered.
    Terminated,
    /// The SSA stack for the TCS is exhausted (nested faults beyond
    /// provisioned depth).
    SsaOverflow,
    /// A platform monotonic counter failed its MAC check (NVRAM bits
    /// overwritten by the OS) — the rollback-attack signal of the
    /// checkpoint/restore subsystem.
    CounterTampered,
    /// A sealed snapshot's freshness check failed: the monotonic counter
    /// does not match the value sealed into the blob (stale or forked
    /// snapshot presented at restore).
    SnapshotStale {
        /// Counter value sealed inside the snapshot.
        sealed: u64,
        /// Current verified platform counter value.
        current: u64,
    },
}

impl core::fmt::Display for SgxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SgxError::EpcFull => write!(f, "EPC is full"),
            SgxError::NoSuchEnclave(eid) => write!(f, "no such enclave: {eid}"),
            SgxError::InvalidFrame => write!(f, "invalid EPC frame"),
            SgxError::OutOfRange(va) => write!(f, "address {va} outside enclave range"),
            SgxError::NoSuchPage(vpn) => write!(f, "no valid EPC page for vpn {vpn}"),
            SgxError::NotBlocked(vpn) => write!(f, "page {vpn} must be EBLOCKed first"),
            SgxError::PendingStateMismatch(vpn) => {
                write!(f, "pending/modified state mismatch on {vpn}")
            }
            SgxError::ResumeBlocked => {
                write!(f, "ERESUME blocked by pending-exception flag")
            }
            SgxError::LifecycleViolation => write!(f, "enclave lifecycle violation"),
            SgxError::BadTcs(i) => write!(f, "bad TCS index {i}"),
            SgxError::SealBroken => write!(f, "sealed page failed authentication"),
            SgxError::Replay(vpn) => write!(f, "replay detected for page {vpn}"),
            SgxError::Terminated => write!(f, "enclave is terminated"),
            SgxError::SsaOverflow => write!(f, "SSA stack overflow"),
            SgxError::CounterTampered => {
                write!(f, "monotonic counter failed MAC verification")
            }
            SgxError::SnapshotStale { sealed, current } => write!(
                f,
                "snapshot freshness mismatch: sealed counter {sealed}, platform counter {current}"
            ),
        }
    }
}

impl std::error::Error for SgxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_write() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(!AccessKind::Execute.is_write());
    }

    #[test]
    fn errors_display() {
        let err = SgxError::OutOfRange(Va(0x1234));
        assert!(err.to_string().contains("0x1234"));
        let err = SgxError::Replay(Vpn(7));
        assert!(err.to_string().contains("0x7"));
    }
}
