//! Cycle cost model and global cycle counter.
//!
//! Autarky's evaluation is expressed in CPU cycles (Figure 5) and in
//! throughput derived from run time. Because the simulator executes
//! functionally, all timing comes from this module: every architectural
//! event charges a fixed number of cycles taken from a [`CostModel`].
//!
//! The default constants are calibrated so that the *composition* of costs
//! reproduces the shapes reported in the paper:
//!
//! * enclave transitions dominate paging latency (40–50%, §7.1);
//! * SGXv2 software paging is more expensive than SGXv1 `EWB`/`ELDU`
//!   (Figure 5), because it performs in-enclave crypto plus extra
//!   `EACCEPT` round trips;
//! * the proposed AEX-elision optimization removes the preemption
//!   (`AEX`+`ERESUME`) and handler-invocation (`EENTER`+`EEXIT`) terms,
//!   making secure paging faster than unprotected paging (§7.1);
//! * the added Autarky hardware checks cost ~10 cycles per TLB fill and
//!   nothing elsewhere (§7, architecture-changes overhead).

/// Clock frequency used to convert cycles to seconds for throughput
/// reporting (3 GHz, a typical server/laptop turbo clock).
pub const CLOCK_HZ: u64 = 3_000_000_000;

/// Cycle costs of architectural events.
///
/// All values are in CPU cycles. The defaults approximate published SGX
/// microbenchmarks (enclave transitions of a few thousand cycles,
/// ~40k-cycle paging operations) and the paper's Figure 5 breakdown.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// `EENTER`: host-to-enclave transition.
    pub eenter: u64,
    /// `EEXIT`: enclave-to-host transition.
    pub eexit: u64,
    /// Asynchronous enclave exit: context save, TLB/L1 flush, exception
    /// delivery to the OS.
    pub aex: u64,
    /// `ERESUME`: restore the SSA context.
    pub eresume: u64,
    /// TLB hit (charged on every memory access).
    pub tlb_hit: u64,
    /// TLB miss: page-table walk plus EPCM check.
    pub tlb_fill: u64,
    /// Extra per-fill check added by Autarky (accessed/dirty-bit
    /// precondition), only charged for self-paging enclaves. The paper
    /// pessimistically assumes 10 cycles (§7).
    pub autarky_fill_check: u64,
    /// OS page-fault handler path (ring switch, handler dispatch).
    pub os_fault_handler: u64,
    /// OS system-call entry/exit (ring switch) for a synchronous syscall.
    pub syscall: u64,
    /// Exitless host call: spinlock handoff to an untrusted helper thread
    /// (no enclave transition), as in Eleos/SCONE/Graphene exitless mode.
    pub exitless_call: u64,
    /// `EWB`: evict one EPC page (includes hardware en/crypt + VA update).
    pub ewb_page: u64,
    /// `ELDU`: reload one EPC page (includes decrypt + verification).
    pub eldu_page: u64,
    /// `EAUG`: add a pending page (SGXv2).
    pub eaug: u64,
    /// `EACCEPT` / `EACCEPTCOPY`: in-enclave page-change confirmation.
    pub eaccept: u64,
    /// `EMODPR` / `EMODT`: permission / type modification.
    pub emod: u64,
    /// `EREMOVE`: free an EPC page.
    pub eremove: u64,
    /// `EBLOCK` + `ETRACK` + IPI/TLB-shootdown, amortized per evicted page.
    pub shootdown_page: u64,
    /// Software crypto cost per byte (SGXv2 path encrypts/decrypts page
    /// contents inside the enclave with AES-NI; we charge ~1 cycle/byte).
    pub sw_crypto_per_byte: u64,
    /// Per-page bookkeeping in the Autarky runtime fault handler.
    pub runtime_handler: u64,
    /// Cost charged per byte for an oblivious (CMOV-based) copy.
    pub oblivious_copy_per_byte: u64,
    /// Plain in-enclave memory copy cost per byte.
    pub memcpy_per_byte: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            eenter: 3_500,
            eexit: 3_300,
            aex: 4_200,
            eresume: 3_800,
            tlb_hit: 1,
            tlb_fill: 40,
            autarky_fill_check: 10,
            os_fault_handler: 1_500,
            syscall: 1_200,
            exitless_call: 600,
            ewb_page: 10_000,
            eldu_page: 10_000,
            eaug: 1_800,
            eaccept: 1_500,
            emod: 1_200,
            eremove: 900,
            shootdown_page: 500,
            sw_crypto_per_byte: 2,
            runtime_handler: 700,
            oblivious_copy_per_byte: 4,
            memcpy_per_byte: 1,
        }
    }
}

impl CostModel {
    /// *Analytical* cost of the handler-invocation hop (`EENTER`+`EEXIT`)
    /// that the OS performs to upcall the enclave's fault handler.
    ///
    /// This is a reference sum, not a charge site: the actual charges
    /// happen once each inside `Machine::eenter`/`Machine::eexit`, tagged
    /// [`CostTag::HandlerInvocation`]. Measurement code should read
    /// [`Clock::tag_total`] so reported breakdowns can never drift from
    /// what was actually charged.
    pub fn handler_invocation(&self) -> u64 {
        self.eenter + self.eexit
    }

    /// *Analytical* cost of enclave preemption (`AEX` + `ERESUME`).
    ///
    /// Like [`CostModel::handler_invocation`], a reference sum only; the
    /// single charge sites live in `Machine::fault`/`Machine::eresume`
    /// under [`CostTag::Preemption`].
    pub fn preemption(&self) -> u64 {
        self.aex + self.eresume
    }
}

/// Category a cycle charge is attributed to.
///
/// Every [`Clock::charge_tagged`] call site picks exactly one tag, and
/// each architectural event has exactly one charge site, so per-tag
/// totals are a complete, non-overlapping decomposition of
/// [`Clock::now`]. Latency breakdowns (Figure 5, the telemetry report)
/// are *derived* from these totals instead of re-multiplying `CostModel`
/// constants — one source of truth, no possibility of drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CostTag {
    /// `AEX` + `ERESUME`: enclave preemption.
    Preemption = 0,
    /// `EENTER` + `EEXIT`: fault-handler invocation hop.
    HandlerInvocation = 1,
    /// Autarky runtime bookkeeping (handler work, retry backoff).
    Runtime = 2,
    /// OS kernel work (fault dispatch, ring switches outside syscalls).
    OsKernel = 3,
    /// Syscall / exitless-call transitions into the OS.
    Syscall = 4,
    /// SGX paging instructions (`EWB`, `ELDU`, `EAUG`, `EACCEPT*`,
    /// `EMOD*`, `EREMOVE`, shootdowns).
    Paging = 5,
    /// Address translation (TLB hits, fills, Autarky's fill check).
    Translation = 6,
    /// Software crypto on the SGXv2 seal/open path.
    Crypto = 7,
    /// ORAM data-path work (bucket I/O, oblivious scans).
    Oram = 8,
    /// Delays injected by the hostile-OS fault injector.
    Injected = 9,
    /// Uncategorized (plain `Clock::charge`, data copies).
    Other = 10,
    /// Flight-recorder event capture: the recorder's own observer effect,
    /// charged per recorded event so record/replay artifacts account for
    /// the cycles the instrumentation itself consumed.
    Recorder = 11,
}

/// Number of [`CostTag`] categories.
pub const COST_TAGS: usize = 12;

impl CostTag {
    /// All tags, in discriminant order.
    pub const ALL: [CostTag; COST_TAGS] = [
        CostTag::Preemption,
        CostTag::HandlerInvocation,
        CostTag::Runtime,
        CostTag::OsKernel,
        CostTag::Syscall,
        CostTag::Paging,
        CostTag::Translation,
        CostTag::Crypto,
        CostTag::Oram,
        CostTag::Injected,
        CostTag::Other,
        CostTag::Recorder,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CostTag::Preemption => "preemption",
            CostTag::HandlerInvocation => "handler_invocation",
            CostTag::Runtime => "runtime",
            CostTag::OsKernel => "os_kernel",
            CostTag::Syscall => "syscall",
            CostTag::Paging => "paging",
            CostTag::Translation => "translation",
            CostTag::Crypto => "crypto",
            CostTag::Oram => "oram",
            CostTag::Injected => "injected",
            CostTag::Other => "other",
            CostTag::Recorder => "recorder",
        }
    }
}

/// One journaled cycle charge: the clock value *after* the charge
/// landed, the tag it was attributed to, and the amount.
///
/// The half-open interval `(at - amount, at]` is exactly the stretch of
/// simulated time this charge advanced the clock through, which is what
/// lets a profiler place a charge inside (or outside) a span or
/// correlation-chain window without ambiguity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChargeRecord {
    /// Clock value immediately after the charge.
    pub at: u64,
    /// Attribution tag.
    pub tag: CostTag,
    /// Cycles charged.
    pub amount: u64,
}

/// Bounded per-charge journal (armed only while a host-side profiler is
/// collecting). New records are dropped once `capacity` is reached —
/// the same drop-new policy as the telemetry span ring — and counted,
/// so a profiler can refuse to attribute from a truncated journal
/// instead of silently under-reporting.
#[derive(Debug, Clone, Default)]
struct ChargeJournal {
    entries: Vec<ChargeRecord>,
    capacity: usize,
    dropped: u64,
}

impl ChargeJournal {
    fn push(&mut self, record: ChargeRecord) {
        if self.entries.len() < self.capacity {
            self.entries.push(record);
        } else {
            self.dropped += 1;
        }
    }
}

/// A monotonically increasing cycle counter shared by the whole machine,
/// with per-[`CostTag`] attribution.
#[derive(Debug, Default, Clone)]
pub struct Clock {
    cycles: u64,
    tagged: [u64; COST_TAGS],
    journal: Option<ChargeJournal>,
}

impl Clock {
    /// Create a clock at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstruct a clock from previously captured totals (checkpoint
    /// restore). The per-tag totals must partition `cycles` exactly, as
    /// produced by [`Clock::now`] + [`Clock::tag_totals`].
    pub fn from_parts(cycles: u64, tagged: [u64; COST_TAGS]) -> Self {
        Self {
            cycles,
            tagged,
            journal: None,
        }
    }

    /// Charge `cycles` cycles, attributed to [`CostTag::Other`].
    pub fn charge(&mut self, cycles: u64) {
        self.charge_tagged(CostTag::Other, cycles);
    }

    /// Charge `cycles` cycles attributed to `tag`.
    pub fn charge_tagged(&mut self, tag: CostTag, cycles: u64) {
        self.cycles = self.cycles.wrapping_add(cycles);
        self.tagged[tag as usize] = self.tagged[tag as usize].wrapping_add(cycles);
        if cycles > 0 {
            if let Some(journal) = self.journal.as_mut() {
                journal.push(ChargeRecord {
                    at: self.cycles,
                    tag,
                    amount: cycles,
                });
            }
        }
    }

    /// Arm the per-charge journal with room for `capacity` records.
    ///
    /// This is the profiler's cost-ledger export hook: while armed,
    /// every non-zero [`Clock::charge_tagged`] appends one
    /// [`ChargeRecord`], so a host-side observer can reconstruct *when*
    /// each tagged cycle landed, not just the per-tag totals. Zero-cycle
    /// charges are skipped — they advance nothing and would only consume
    /// journal slots. Re-arming discards any previously journaled
    /// records.
    pub fn arm_charge_journal(&mut self, capacity: usize) {
        self.journal = Some(ChargeJournal {
            entries: Vec::new(),
            capacity,
            dropped: 0,
        });
    }

    /// Whether the charge journal is armed.
    pub fn charge_journal_armed(&self) -> bool {
        self.journal.is_some()
    }

    /// Disarm the journal and return `(records, dropped)`: everything
    /// journaled since arming plus the count of records lost to the
    /// capacity bound. Returns `None` if the journal was never armed.
    pub fn disarm_charge_journal(&mut self) -> Option<(Vec<ChargeRecord>, u64)> {
        self.journal.take().map(|j| (j.entries, j.dropped))
    }

    /// Total cycles attributed to `tag` so far.
    pub fn tag_total(&self, tag: CostTag) -> u64 {
        self.tagged[tag as usize]
    }

    /// All per-tag totals, indexed by discriminant.
    pub fn tag_totals(&self) -> [u64; COST_TAGS] {
        self.tagged
    }

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.cycles
    }

    /// Elapsed cycles since `start`.
    pub fn since(&self, start: u64) -> u64 {
        self.cycles.wrapping_sub(start)
    }

    /// Convert a cycle count to seconds at [`CLOCK_HZ`].
    pub fn cycles_to_secs(cycles: u64) -> f64 {
        cycles as f64 / CLOCK_HZ as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut clock = Clock::new();
        assert_eq!(clock.now(), 0);
        clock.charge(10);
        clock.charge(5);
        assert_eq!(clock.now(), 15);
        assert_eq!(clock.since(10), 5);
    }

    #[test]
    fn tagged_charges_decompose_the_total() {
        let mut clock = Clock::new();
        clock.charge_tagged(CostTag::Preemption, 100);
        clock.charge_tagged(CostTag::Paging, 40);
        clock.charge(3); // Other
        assert_eq!(clock.now(), 143);
        assert_eq!(clock.tag_total(CostTag::Preemption), 100);
        assert_eq!(clock.tag_total(CostTag::Paging), 40);
        assert_eq!(clock.tag_total(CostTag::Other), 3);
        let sum: u64 = clock.tag_totals().iter().sum();
        assert_eq!(sum, clock.now(), "tags partition the clock exactly");
    }

    #[test]
    fn tag_names_are_unique() {
        let names: std::collections::HashSet<&str> =
            CostTag::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), COST_TAGS);
        for (i, tag) in CostTag::ALL.iter().enumerate() {
            assert_eq!(*tag as usize, i);
        }
    }

    #[test]
    fn default_costs_have_paper_shape() {
        let costs = CostModel::default();
        // Transitions must account for roughly 40-50% of a ~20-30k cycle
        // paging operation (Figure 5).
        let transitions = costs.preemption() + costs.handler_invocation();
        let sgx1_fault = transitions + costs.runtime_handler + costs.eldu_page + costs.syscall;
        let frac = transitions as f64 / sgx1_fault as f64;
        assert!(
            (0.4..=0.9).contains(&frac),
            "transition fraction {frac} out of expected range"
        );
        // Autarky's fill check must be tiny relative to a fill.
        assert!(costs.autarky_fill_check <= costs.tlb_fill);
    }

    #[test]
    fn cycles_to_secs() {
        assert!((Clock::cycles_to_secs(CLOCK_HZ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_journal_records_every_nonzero_charge() {
        let mut clock = Clock::new();
        clock.charge_tagged(CostTag::Paging, 7); // before arming: not journaled
        clock.arm_charge_journal(16);
        assert!(clock.charge_journal_armed());
        clock.charge_tagged(CostTag::Preemption, 100);
        clock.charge_tagged(CostTag::Translation, 0); // zero: skipped
        clock.charge(3);
        let (records, dropped) = clock.disarm_charge_journal().expect("armed");
        assert_eq!(dropped, 0);
        assert_eq!(
            records,
            vec![
                ChargeRecord {
                    at: 107,
                    tag: CostTag::Preemption,
                    amount: 100
                },
                ChargeRecord {
                    at: 110,
                    tag: CostTag::Other,
                    amount: 3
                },
            ]
        );
        assert!(!clock.charge_journal_armed());
        assert!(clock.disarm_charge_journal().is_none());
    }

    #[test]
    fn charge_journal_drops_new_records_when_full() {
        let mut clock = Clock::new();
        clock.arm_charge_journal(2);
        for _ in 0..5 {
            clock.charge_tagged(CostTag::Oram, 10);
        }
        let (records, dropped) = clock.disarm_charge_journal().expect("armed");
        assert_eq!(records.len(), 2, "retained prefix is deterministic");
        assert_eq!(dropped, 3);
        // The ledger totals are unaffected by journaling.
        assert_eq!(clock.tag_total(CostTag::Oram), 50);
        assert_eq!(clock.now(), 50);
    }
}
