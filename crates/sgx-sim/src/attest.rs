//! Enclave measurement and local attestation.
//!
//! Autarky's new attribute bit is *attested*: a remote party verifying a
//! report learns whether the enclave runs in self-paging mode, and the
//! threat model (§3) relies on attestation to detect restart attacks. The
//! simulator implements the measurement flow (`ECREATE`/`EADD`/`EEXTEND`
//! folding into MRENCLAVE) and HMAC-based reports standing in for
//! `EREPORT`'s CMAC.

use autarky_crypto::{hmac_sha256, Sha256};

use crate::addr::Vpn;
use crate::enclave::Attributes;
use crate::epc::{PageType, Perms};

/// Running measurement of an enclave under construction.
#[derive(Clone)]
pub struct Measurement {
    hasher: Sha256,
}

impl Measurement {
    /// Begin a measurement (`ECREATE`).
    pub fn start(base: u64, size: u64, attributes: Attributes) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"ECREATE");
        hasher.update(&base.to_le_bytes());
        hasher.update(&size.to_le_bytes());
        hasher.update(&attributes.to_bytes());
        Self { hasher }
    }

    /// Record an added page's metadata (`EADD`).
    pub fn add_page(&mut self, vpn: Vpn, page_type: PageType, perms: Perms) {
        self.hasher.update(b"EADD");
        self.hasher.update(&vpn.0.to_le_bytes());
        self.hasher.update(&[
            match page_type {
                PageType::Reg => 0u8,
                PageType::Tcs => 1,
                PageType::Trim => 2,
            },
            perms.r as u8,
            perms.w as u8,
            perms.x as u8,
        ]);
    }

    /// Record page contents (`EEXTEND`).
    pub fn extend(&mut self, contents: &[u8]) {
        self.hasher.update(b"EEXTEND");
        self.hasher.update(contents);
    }

    /// Finalize to MRENCLAVE (`EINIT`).
    pub fn finalize(self) -> [u8; 32] {
        self.hasher.finalize()
    }
}

/// An attestation report (`EREPORT` analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// MRENCLAVE of the reporting enclave.
    pub mrenclave: [u8; 32],
    /// Attested attributes (carries the self-paging bit).
    pub attributes: Attributes,
    /// 64 bytes of enclave-chosen data bound into the report.
    pub report_data: [u8; 64],
    /// MAC over the above under the platform report key.
    pub mac: [u8; 32],
}

fn report_body(mrenclave: &[u8; 32], attributes: Attributes, report_data: &[u8; 64]) -> Vec<u8> {
    let mut body = Vec::with_capacity(32 + 2 + 64);
    body.extend_from_slice(mrenclave);
    body.extend_from_slice(&attributes.to_bytes());
    body.extend_from_slice(report_data);
    body
}

/// Produce a report keyed by the platform's report key.
pub fn make_report(
    platform_key: &[u8; 32],
    mrenclave: [u8; 32],
    attributes: Attributes,
    report_data: [u8; 64],
) -> Report {
    let mac = hmac_sha256(
        platform_key,
        &report_body(&mrenclave, attributes, &report_data),
    );
    Report {
        mrenclave,
        attributes,
        report_data,
        mac,
    }
}

/// Verify a report's MAC (what a local verifier enclave does).
pub fn verify_report(platform_key: &[u8; 32], report: &Report) -> bool {
    let expected = hmac_sha256(
        platform_key,
        &report_body(&report.mrenclave, report.attributes, &report.report_data),
    );
    autarky_crypto::ct_eq(&expected, &report.mac)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [9; 32];

    fn sample_measurement(self_paging: bool) -> [u8; 32] {
        let mut m = Measurement::start(
            0x10000,
            0x4000,
            Attributes {
                self_paging,
                debug: false,
            },
        );
        m.add_page(Vpn(0x10), PageType::Tcs, Perms::RW);
        m.add_page(Vpn(0x11), PageType::Reg, Perms::RX);
        m.extend(b"some code page contents");
        m.finalize()
    }

    #[test]
    fn measurement_is_deterministic() {
        assert_eq!(sample_measurement(true), sample_measurement(true));
    }

    #[test]
    fn self_paging_bit_changes_measurement() {
        assert_ne!(sample_measurement(true), sample_measurement(false));
    }

    #[test]
    fn page_order_changes_measurement() {
        let mut a = Measurement::start(0, 0x2000, Attributes::default());
        a.add_page(Vpn(0), PageType::Reg, Perms::RW);
        a.add_page(Vpn(1), PageType::Reg, Perms::RW);
        let mut b = Measurement::start(0, 0x2000, Attributes::default());
        b.add_page(Vpn(1), PageType::Reg, Perms::RW);
        b.add_page(Vpn(0), PageType::Reg, Perms::RW);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn report_verifies() {
        let report = make_report(
            &KEY,
            sample_measurement(true),
            Attributes {
                self_paging: true,
                debug: false,
            },
            [7; 64],
        );
        assert!(verify_report(&KEY, &report));
        assert!(
            report.attributes.self_paging,
            "verifier sees the attested bit"
        );
    }

    #[test]
    fn forged_report_rejected() {
        let mut report = make_report(&KEY, [1; 32], Attributes::default(), [0; 64]);
        report.attributes.self_paging = true; // attacker flips the bit
        assert!(!verify_report(&KEY, &report));
    }

    #[test]
    fn wrong_key_rejected() {
        let report = make_report(&KEY, [1; 32], Attributes::default(), [0; 64]);
        assert!(!verify_report(&[8; 32], &report));
    }
}
