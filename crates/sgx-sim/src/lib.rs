//! A deterministic functional model of the Intel SGX architecture with the
//! Autarky ISA extensions.
//!
//! This crate is the hardware substrate for the Autarky reproduction. It
//! models the parts of SGX that the controlled-channel attack and its
//! defense live in:
//!
//! * the enclave page cache ([`epc`]) and its metadata map (EPCM);
//! * OS-controlled page tables ([`pagetable`]) with present/permission/
//!   accessed/dirty bits;
//! * the TLB ([`tlb`]) with enclave-entry flushes and the SGX-specific
//!   fill-time checks;
//! * the SGX1/SGX2 instruction set, AEX/`EENTER`/`ERESUME`/`EEXIT` flows,
//!   TCS/SSA state, and `EWB`/`ELDU` sealing ([`machine`], [`seal`]);
//! * enclave measurement and attestation ([`attest`]);
//! * a cycle cost model that stands in for real hardware timing ([`cost`]).
//!
//! The **Autarky extensions** (paper §5.1) are implemented behind the
//! attested `self_paging` attribute bit:
//!
//! 1. page-fault masking — the OS sees every enclave fault as a read fault
//!    at the enclave base address;
//! 2. the per-TCS pending-exception flag — `ERESUME` fails until the OS
//!    re-enters the enclave through its entry point, guaranteeing the
//!    trusted fault handler observes every fault;
//! 3. the accessed/dirty-bit precondition — a fetched enclave PTE whose
//!    A (or, for writes, D) bit is clear is treated as invalid, closing the
//!    silent PTE-bit channel;
//! 4. optional AEX elision — faults vector directly to the in-enclave
//!    handler, skipping the AEX and OS round trip.
//!
//! Everything here is mechanism; paging *policy* lives in
//! `autarky-runtime`, and the adversary lives in `autarky-os-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod attest;
pub mod cost;
pub mod counter;
pub mod enclave;
pub mod epc;
pub mod error;
pub mod machine;
pub mod pagetable;
pub mod seal;
pub mod tlb;

pub use addr::{EnclaveId, Frame, Va, Vpn, PAGE_SIZE};
pub use cost::{ChargeRecord, Clock, CostModel, CostTag, CLOCK_HZ, COST_TAGS};
pub use counter::{snapshot_seal_key, MonotonicCounter};
pub use enclave::{Attributes, Secs, SsaExInfo};
pub use epc::{PageType, Perms};
pub use error::{AccessKind, FaultCause, FaultEvent, SgxError};
pub use machine::{
    AccessError, EnclaveCapture, Machine, MachineConfig, MachineStats, PageCapture, TcsCapture,
    TransitionEvent, TransitionKind, TRANSITION_KINDS,
};
pub use pagetable::{PageTable, Pte};
pub use seal::SealedPage;
