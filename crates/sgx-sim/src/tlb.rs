//! The translation lookaside buffer.
//!
//! SGX implements its access control in the TLB-miss path, and flushes the
//! TLB on every enclave entry and exit. The TLB matters for two reasons in
//! this model:
//!
//! * the number of *fills* is the multiplier for Autarky's added
//!   accessed/dirty-bit check (the paper charges 10 cycles per fill and
//!   measures a 0.07% geomean slowdown on nbench);
//! * cached translations determine *when* the OS actually observes enclave
//!   accesses via PTE bits — clearing an A bit leaks nothing until the
//!   stale TLB entry is shot down, which is why the published attacks pair
//!   bit-clearing with IPI shootdowns.

use std::collections::HashMap;

use crate::addr::{EnclaveId, Frame, Vpn};
use crate::epc::Perms;

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Backing EPC frame.
    pub frame: Frame,
    /// Permissions snapshot taken at fill time.
    pub perms: Perms,
    /// Whether the PTE's dirty bit was already set at fill time. A write
    /// through an entry with `dirty_ok == false` forces a re-walk, exactly
    /// like x86's dirty-bit update on a TLB entry cached from a read.
    pub dirty_ok: bool,
}

/// Simulated TLB holding enclave translations, tagged by enclave.
#[derive(Debug, Default)]
pub struct Tlb {
    entries: HashMap<(EnclaveId, Vpn), TlbEntry>,
    fills: u64,
    hits: u64,
    flushes: u64,
}

impl Tlb {
    /// Create an empty TLB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a translation; counts a hit when found.
    pub fn lookup(&mut self, eid: EnclaveId, vpn: Vpn) -> Option<TlbEntry> {
        let entry = self.entries.get(&(eid, vpn)).copied();
        if entry.is_some() {
            self.hits += 1;
        }
        entry
    }

    /// Install a translation; counts a fill.
    pub fn fill(&mut self, eid: EnclaveId, vpn: Vpn, entry: TlbEntry) {
        self.fills += 1;
        self.entries.insert((eid, vpn), entry);
    }

    /// Flush every entry (enclave entry/exit, AEX).
    pub fn flush_all(&mut self) {
        self.flushes += 1;
        self.entries.clear();
    }

    /// Shoot down one page's translation (OS-initiated IPI).
    pub fn shootdown(&mut self, eid: EnclaveId, vpn: Vpn) {
        self.entries.remove(&(eid, vpn));
    }

    /// Shoot down all translations of one enclave (ETRACK epoch).
    pub fn shootdown_enclave(&mut self, eid: EnclaveId) {
        self.entries.retain(|(e, _), _| *e != eid);
    }

    /// Capture one enclave's cached translations, sorted by page, without
    /// counting lookups (checkpoint support: TLB warmth changes the cycle
    /// charges of the continuation, so a byte-identical restore must carry
    /// the entries — and the counters — across).
    pub fn entries_of(&self, eid: EnclaveId) -> Vec<(Vpn, TlbEntry)> {
        let mut entries: Vec<(Vpn, TlbEntry)> = self
            .entries
            .iter()
            .filter(|((e, _), _)| *e == eid)
            .map(|((_, vpn), entry)| (*vpn, *entry))
            .collect();
        entries.sort_by_key(|(vpn, _)| vpn.0);
        entries
    }

    /// Reinstall a captured translation without counting a fill.
    pub fn reinstall(&mut self, eid: EnclaveId, vpn: Vpn, entry: TlbEntry) {
        self.entries.insert((eid, vpn), entry);
    }

    /// Restore the fill/hit/flush counters from a capture.
    pub fn restore_counters(&mut self, fills: u64, hits: u64, flushes: u64) {
        self.fills = fills;
        self.hits = hits;
        self.flushes = flushes;
    }

    /// Total fills since creation.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Total hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total whole-TLB flushes since creation.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E1: EnclaveId = EnclaveId(1);
    const E2: EnclaveId = EnclaveId(2);

    fn entry(frame: u32) -> TlbEntry {
        TlbEntry {
            frame: Frame(frame),
            perms: Perms::RW,
            dirty_ok: true,
        }
    }

    #[test]
    fn fill_then_hit() {
        let mut tlb = Tlb::new();
        assert!(tlb.lookup(E1, Vpn(1)).is_none());
        tlb.fill(E1, Vpn(1), entry(7));
        assert_eq!(tlb.lookup(E1, Vpn(1)).expect("hit").frame, Frame(7));
        assert_eq!(tlb.fills(), 1);
        assert_eq!(tlb.hits(), 1);
    }

    #[test]
    fn entries_are_enclave_tagged() {
        let mut tlb = Tlb::new();
        tlb.fill(E1, Vpn(1), entry(7));
        assert!(tlb.lookup(E2, Vpn(1)).is_none());
    }

    #[test]
    fn flush_clears_everything() {
        let mut tlb = Tlb::new();
        tlb.fill(E1, Vpn(1), entry(7));
        tlb.flush_all();
        assert!(tlb.lookup(E1, Vpn(1)).is_none());
        assert_eq!(tlb.flushes(), 1);
    }

    #[test]
    fn shootdown_is_targeted() {
        let mut tlb = Tlb::new();
        tlb.fill(E1, Vpn(1), entry(7));
        tlb.fill(E1, Vpn(2), entry(8));
        tlb.shootdown(E1, Vpn(1));
        assert!(tlb.lookup(E1, Vpn(1)).is_none());
        assert!(tlb.lookup(E1, Vpn(2)).is_some());
    }

    #[test]
    fn enclave_shootdown() {
        let mut tlb = Tlb::new();
        tlb.fill(E1, Vpn(1), entry(7));
        tlb.fill(E2, Vpn(1), entry(9));
        tlb.shootdown_enclave(E1);
        assert!(tlb.lookup(E1, Vpn(1)).is_none());
        assert!(tlb.lookup(E2, Vpn(1)).is_some());
    }
}
