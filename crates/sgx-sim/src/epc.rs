//! The enclave page cache (EPC) and its metadata map (EPCM).
//!
//! EPC frames hold enclave page contents; they are the scarce resource that
//! drives all paging in this system (the real EPC was ~190 MB usable at the
//! time of the paper). The EPCM is the hardware-owned metadata array that
//! SGX consults after every page-table walk to verify that the untrusted
//! OS's mapping is the one the enclave agreed to.

use crate::addr::{EnclaveId, Frame, Vpn, PAGE_SIZE};
use crate::error::SgxError;

/// One page worth of bytes.
pub type PageData = Box<[u8; PAGE_SIZE]>;

/// Allocate a zeroed page.
pub fn zeroed_page() -> PageData {
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("exactly PAGE_SIZE bytes")
}

/// EPCM page types (subset of the architectural `PT_*` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    /// Regular data/code page.
    Reg,
    /// Thread control structure page.
    Tcs,
    /// Page being trimmed (deallocated) via `EMODT`.
    Trim,
}

/// Page permissions recorded in the EPCM (and in PTEs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// Read-only data.
    pub const R: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };
    /// Read-write data.
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-execute code.
    pub const RX: Perms = Perms {
        r: true,
        w: false,
        x: true,
    };
    /// All permissions.
    pub const RWX: Perms = Perms {
        r: true,
        w: true,
        x: true,
    };

    /// Whether `self` allows everything `other` allows.
    pub fn covers(self, other: Perms) -> bool {
        (self.r || !other.r) && (self.w || !other.w) && (self.x || !other.x)
    }

    /// Whether an access of `kind` is permitted.
    pub fn allows(self, kind: crate::error::AccessKind) -> bool {
        match kind {
            crate::error::AccessKind::Read => self.r,
            crate::error::AccessKind::Write => self.w,
            crate::error::AccessKind::Execute => self.x,
        }
    }
}

/// Metadata for one EPC frame (one EPCM entry).
#[derive(Debug, Clone)]
pub struct EpcmEntry {
    /// Entry describes a live enclave page.
    pub valid: bool,
    /// Owning enclave.
    pub eid: EnclaveId,
    /// Linear (virtual) page this frame backs; the EPCM pins the VA↔PA
    /// association so the OS cannot remap pages within the enclave.
    pub vpn: Vpn,
    /// Page type.
    pub page_type: PageType,
    /// Permissions granted by the enclave.
    pub perms: Perms,
    /// Page is EBLOCKed in preparation for eviction; accesses fault.
    pub blocked: bool,
    /// SGXv2: page added by `EAUG` but not yet `EACCEPT`ed.
    pub pending: bool,
    /// SGXv2: permissions restricted by `EMODPR` (or type changed by
    /// `EMODT`) but not yet `EACCEPT`ed.
    pub modified: bool,
}

/// The enclave page cache: frames plus their EPCM entries.
pub struct Epc {
    data: Vec<Option<PageData>>,
    epcm: Vec<Option<EpcmEntry>>,
    free: Vec<Frame>,
}

impl Epc {
    /// Create an EPC with `frames` page frames.
    pub fn new(frames: usize) -> Self {
        Self {
            data: (0..frames).map(|_| None).collect(),
            epcm: vec![None; frames],
            free: (0..frames as u32).rev().map(Frame).collect(),
        }
    }

    /// Total number of frames.
    pub fn total_frames(&self) -> usize {
        self.data.len()
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Allocate a frame, installing `entry` and zeroed contents.
    pub fn alloc(&mut self, entry: EpcmEntry) -> Result<Frame, SgxError> {
        let frame = self.free.pop().ok_or(SgxError::EpcFull)?;
        self.data[frame.0 as usize] = Some(zeroed_page());
        self.epcm[frame.0 as usize] = Some(entry);
        Ok(frame)
    }

    /// Free a frame, scrubbing its contents.
    pub fn free(&mut self, frame: Frame) -> Result<(), SgxError> {
        let idx = frame.0 as usize;
        if idx >= self.data.len() || self.epcm[idx].is_none() {
            return Err(SgxError::InvalidFrame);
        }
        self.data[idx] = None;
        self.epcm[idx] = None;
        self.free.push(frame);
        Ok(())
    }

    /// Borrow the EPCM entry for `frame`.
    pub fn entry(&self, frame: Frame) -> Result<&EpcmEntry, SgxError> {
        self.epcm
            .get(frame.0 as usize)
            .and_then(|e| e.as_ref())
            .ok_or(SgxError::InvalidFrame)
    }

    /// Mutably borrow the EPCM entry for `frame`.
    pub fn entry_mut(&mut self, frame: Frame) -> Result<&mut EpcmEntry, SgxError> {
        self.epcm
            .get_mut(frame.0 as usize)
            .and_then(|e| e.as_mut())
            .ok_or(SgxError::InvalidFrame)
    }

    /// Borrow frame contents.
    pub fn page(&self, frame: Frame) -> Result<&[u8; PAGE_SIZE], SgxError> {
        self.data
            .get(frame.0 as usize)
            .and_then(|p| p.as_deref())
            .ok_or(SgxError::InvalidFrame)
    }

    /// Mutably borrow frame contents.
    pub fn page_mut(&mut self, frame: Frame) -> Result<&mut [u8; PAGE_SIZE], SgxError> {
        self.data
            .get_mut(frame.0 as usize)
            .and_then(|p| p.as_deref_mut())
            .ok_or(SgxError::InvalidFrame)
    }

    /// Iterate over `(frame, entry)` pairs of valid entries.
    pub fn iter_valid(&self) -> impl Iterator<Item = (Frame, &EpcmEntry)> {
        self.epcm
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (Frame(i as u32), e)))
    }

    /// Count frames owned by `eid`.
    pub fn frames_of(&self, eid: EnclaveId) -> usize {
        self.iter_valid().filter(|(_, e)| e.eid == eid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(eid: u32, vpn: u64) -> EpcmEntry {
        EpcmEntry {
            valid: true,
            eid: EnclaveId(eid),
            vpn: Vpn(vpn),
            page_type: PageType::Reg,
            perms: Perms::RW,
            blocked: false,
            pending: false,
            modified: false,
        }
    }

    #[test]
    fn alloc_free_cycle() {
        let mut epc = Epc::new(2);
        assert_eq!(epc.free_frames(), 2);
        let f0 = epc.alloc(entry(1, 0)).expect("alloc");
        let f1 = epc.alloc(entry(1, 1)).expect("alloc");
        assert_ne!(f0, f1);
        assert_eq!(epc.alloc(entry(1, 2)), Err(SgxError::EpcFull));
        epc.free(f0).expect("free");
        assert_eq!(epc.free_frames(), 1);
        let f2 = epc.alloc(entry(1, 2)).expect("realloc");
        assert_eq!(f2, f0);
    }

    #[test]
    fn freed_frame_is_scrubbed() {
        let mut epc = Epc::new(1);
        let f = epc.alloc(entry(1, 0)).expect("alloc");
        epc.page_mut(f).expect("page")[0] = 0xAA;
        epc.free(f).expect("free");
        let f = epc.alloc(entry(2, 0)).expect("alloc");
        assert_eq!(
            epc.page(f).expect("page")[0],
            0,
            "contents must be scrubbed"
        );
    }

    #[test]
    fn double_free_rejected() {
        let mut epc = Epc::new(1);
        let f = epc.alloc(entry(1, 0)).expect("alloc");
        epc.free(f).expect("free");
        assert_eq!(epc.free(f), Err(SgxError::InvalidFrame));
    }

    #[test]
    fn perms_cover() {
        assert!(Perms::RWX.covers(Perms::RW));
        assert!(Perms::RW.covers(Perms::R));
        assert!(!Perms::R.covers(Perms::RW));
        assert!(!Perms::RW.covers(Perms::RX));
    }

    #[test]
    fn perms_allow() {
        use crate::error::AccessKind::*;
        assert!(Perms::R.allows(Read));
        assert!(!Perms::R.allows(Write));
        assert!(Perms::RX.allows(Execute));
        assert!(!Perms::RW.allows(Execute));
    }

    #[test]
    fn frames_of_counts_per_enclave() {
        let mut epc = Epc::new(4);
        epc.alloc(entry(1, 0)).expect("alloc");
        epc.alloc(entry(1, 1)).expect("alloc");
        epc.alloc(entry(2, 0)).expect("alloc");
        assert_eq!(epc.frames_of(EnclaveId(1)), 2);
        assert_eq!(epc.frames_of(EnclaveId(2)), 1);
        assert_eq!(epc.frames_of(EnclaveId(3)), 0);
    }
}
