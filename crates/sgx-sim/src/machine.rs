//! The SGX machine: EPC, EPCM, page tables, TLB, enclaves, and the
//! instruction set — including Autarky's ISA extensions.
//!
//! The [`Machine`] is shared by three distinct callers with different trust:
//!
//! * the **untrusted OS** (`autarky-os-sim`) calls the privileged
//!   instructions (`ECREATE`/`EADD`/`EINIT`/`EBLOCK`/`EWB`/`ELDU`/`EAUG`/
//!   `EMODT`/`EMODPR`/`EREMOVE`), manipulates page tables via
//!   [`Machine::page_table_mut`], and enters/resumes enclaves;
//! * the **trusted runtime** (`autarky-runtime`) calls the unprivileged
//!   enclave instructions (`EACCEPT`/`EACCEPTCOPY`), inspects SSA frames,
//!   and may terminate its enclave;
//! * the **workload layer** issues memory accesses on behalf of code
//!   "executing inside" an enclave via [`Machine::read_bytes`] /
//!   [`Machine::write_bytes`] / [`Machine::fetch_code`].
//!
//! The module enforces the architectural contract between them; policy
//! lives in the higher crates.

use std::collections::HashMap;

use crate::addr::{pages_covering, EnclaveId, Frame, Va, Vpn, PAGE_SIZE};
use crate::attest::{make_report, Measurement, Report};
use crate::cost::{Clock, CostModel, CostTag, COST_TAGS};
use crate::enclave::{Attributes, Secs, SsaExInfo, SsaFrame, Tcs};
use crate::epc::{Epc, EpcmEntry, PageType, Perms};
use crate::error::{AccessKind, FaultCause, FaultEvent, SgxError};
use crate::pagetable::{PageTable, Pte};
use crate::seal::{open_page, seal_page, SealedPage};
use crate::tlb::{Tlb, TlbEntry};

/// Outcome of a memory access that did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// A page fault was raised and (unless elided) delivered to the OS;
    /// the access should be replayed after resolution.
    Fault(FaultEvent),
    /// A fatal machine error (misuse, terminated enclave, SSA overflow).
    Fatal(SgxError),
}

impl From<SgxError> for AccessError {
    fn from(err: SgxError) -> Self {
        AccessError::Fatal(err)
    }
}

/// Kind of enclave transition captured by the (opt-in) transition log.
///
/// Flight-recorder material: when transition recording is armed (see
/// [`Machine::set_transition_recording`]), every enclave entry/exit event
/// appends a [`TransitionEvent`] that higher layers drain into their
/// causal event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// `EENTER`: host-to-enclave entry (handler invocation).
    Eenter,
    /// `EEXIT`: enclave-to-host exit.
    Eexit,
    /// Asynchronous enclave exit (fault delivery to the OS).
    Aex,
    /// `ERESUME`: successful resume from the saved SSA context.
    Eresume,
    /// `ERESUME` refused because the Autarky pending-exception flag was
    /// still set (§5.1.3) — the observable edge that forces the OS to
    /// re-enter through the fault handler.
    ResumeBlocked,
    /// SSA frame popped in-enclave without `ERESUME` (elided-AEX path).
    PopSsa,
}

/// Number of [`TransitionKind`] variants.
pub const TRANSITION_KINDS: usize = 6;

impl TransitionKind {
    /// All kinds, in a stable order (wire codec + exhaustive tests).
    pub const ALL: [TransitionKind; TRANSITION_KINDS] = [
        TransitionKind::Eenter,
        TransitionKind::Eexit,
        TransitionKind::Aex,
        TransitionKind::Eresume,
        TransitionKind::ResumeBlocked,
        TransitionKind::PopSsa,
    ];

    /// Stable display name (also the wire tag).
    pub fn name(self) -> &'static str {
        match self {
            TransitionKind::Eenter => "eenter",
            TransitionKind::Eexit => "eexit",
            TransitionKind::Aex => "aex",
            TransitionKind::Eresume => "eresume",
            TransitionKind::ResumeBlocked => "blocked",
            TransitionKind::PopSsa => "popssa",
        }
    }
}

/// One recorded enclave transition (see [`TransitionKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionEvent {
    /// What happened.
    pub kind: TransitionKind,
    /// Enclave the transition belongs to.
    pub eid: EnclaveId,
    /// TCS slot involved.
    pub tcs: usize,
    /// Simulated-cycle timestamp when the transition was recorded.
    pub cycles: u64,
}

/// Aggregate event counters, used by the evaluation harness.
#[derive(Debug, Default, Clone)]
pub struct MachineStats {
    /// Page faults raised in enclave mode.
    pub faults: u64,
    /// Asynchronous enclave exits performed.
    pub aexs: u64,
    /// `EENTER` count.
    pub eenters: u64,
    /// `ERESUME` count.
    pub eresumes: u64,
    /// `EWB` page evictions.
    pub ewbs: u64,
    /// `ELDU` page reloads.
    pub eldus: u64,
    /// SGXv2 `EAUG` additions.
    pub eaugs: u64,
    /// `EACCEPT`/`EACCEPTCOPY` operations.
    pub eaccepts: u64,
}

/// Captured state of one TCS slot ([`Tcs`] is deliberately not `Clone`,
/// so checkpointing goes through this explicit mirror).
#[derive(Debug, Clone)]
pub struct TcsCapture {
    /// Saved SSA stack (including any pending exception frames).
    pub ssa: Vec<SsaFrame>,
    /// Provisioned SSA depth.
    pub nssa: usize,
    /// Autarky pending-exception flag at capture time.
    pub pending_exception: bool,
    /// Whether a logical core was executing on this TCS.
    pub active: bool,
}

/// Captured state of one resident EPC page: EPCM metadata plus contents.
#[derive(Debug, Clone)]
pub struct PageCapture {
    /// Linear page this frame backed.
    pub vpn: Vpn,
    /// EPCM page type.
    pub page_type: PageType,
    /// EPCM permissions.
    pub perms: Perms,
    /// EBLOCK state.
    pub blocked: bool,
    /// SGXv2 pending (`EAUG` not yet accepted) state.
    pub pending: bool,
    /// SGXv2 modified (`EMODPR`/`EMODT` not yet accepted) state.
    pub modified: bool,
    /// Page contents (exactly [`PAGE_SIZE`] bytes).
    pub contents: Vec<u8>,
}

/// A pause-time capture of one enclave plus the machine timing state its
/// continuation depends on.
///
/// This is the plaintext the snapshot subsystem seals. Frame numbers are
/// deliberately absent from page captures: EPC frames die with the
/// machine, so [`Machine::restore_enclave`] re-allocates frames and
/// rewrites the captured PTEs/TLB entries to the fresh allocation.
/// Machine-global timing state (clock, stats, TLB warmth and counters)
/// rides along because a byte-identical continuation needs it; restore
/// therefore targets a *fresh* machine dedicated to this enclave.
///
/// All fields are public so tamper-style regression tests can corrupt a
/// capture before sealing and assert the restore path rejects it.
#[derive(Debug, Clone)]
pub struct EnclaveCapture {
    /// Enclave identity (preserved across restore).
    pub eid: EnclaveId,
    /// SECS at capture time.
    pub secs: Secs,
    /// Per-TCS state.
    pub tcs: Vec<TcsCapture>,
    /// Next anti-replay version per page, sorted by page.
    pub next_version: Vec<(Vpn, u64)>,
    /// Outstanding evicted-blob versions (the Version Array), sorted by
    /// page.
    pub outstanding: Vec<(Vpn, u64)>,
    /// Resident pages, sorted by page.
    pub pages: Vec<PageCapture>,
    /// Page-table entries (including non-present ones), sorted by page.
    pub ptes: Vec<(Vpn, Pte)>,
    /// Cached TLB translations for this enclave, sorted by page.
    pub tlb: Vec<(Vpn, TlbEntry)>,
    /// Global clock at capture time.
    pub clock_cycles: u64,
    /// Per-tag clock decomposition at capture time.
    pub clock_tagged: [u64; COST_TAGS],
    /// Machine event counters at capture time.
    pub stats: MachineStats,
    /// TLB fill counter at capture time.
    pub tlb_fills: u64,
    /// TLB hit counter at capture time.
    pub tlb_hits: u64,
    /// TLB flush counter at capture time.
    pub tlb_flushes: u64,
}

struct EnclaveState {
    secs: Secs,
    tcs: Vec<Tcs>,
    building: Option<Measurement>,
    /// Next anti-replay version per page.
    next_version: HashMap<Vpn, u64>,
    /// Version of the currently outstanding evicted blob, if the page is
    /// swapped out (models the Version Array slot).
    outstanding: HashMap<Vpn, u64>,
}

/// Configuration for building a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of EPC frames available to all enclaves.
    pub epc_frames: usize,
    /// Cycle cost model.
    pub costs: CostModel,
    /// Enable the paper's proposed AEX-elision optimization: page faults in
    /// self-paging enclaves vector directly to the in-enclave handler
    /// without an AEX/OS round trip (§5.1.3, "Eliding AEX").
    pub elide_aex: bool,
    /// Model the "no upcall" variant (Table 2): the OS resumes via an
    /// in-enclave `ERESUME` shim, eliding the `EENTER`+`EEXIT` handler
    /// invocation hop. Only consumed by the runtime's cost accounting.
    pub elide_handler_invocation: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            epc_frames: 4096, // 16 MiB of EPC by default
            costs: CostModel::default(),
            elide_aex: false,
            elide_handler_invocation: false,
        }
    }
}

/// The simulated SGX platform.
pub struct Machine {
    /// Cost model (public: the harness reads component costs for
    /// breakdowns like Figure 5).
    pub costs: CostModel,
    /// Global cycle counter.
    pub clock: Clock,
    epc: Epc,
    enclaves: HashMap<EnclaveId, EnclaveState>,
    page_tables: HashMap<EnclaveId, PageTable>,
    tlb: Tlb,
    platform_key: [u8; 32],
    next_eid: u32,
    stats: MachineStats,
    /// O(1) reverse map from (enclave, vpn) to the backing EPC frame,
    /// mirroring the EPCM (a real EPCM lookup is indexed by physical
    /// address; this index keeps `frame_of` constant-time).
    frame_index: HashMap<(EnclaveId, Vpn), Frame>,
    elide_aex: bool,
    elide_handler_invocation: bool,
    /// Opt-in transition log (flight-recorder feed); empty and free when
    /// recording is off.
    transitions: Vec<TransitionEvent>,
    record_transitions: bool,
}

impl Machine {
    /// Build a machine from `config`.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            costs: config.costs,
            clock: Clock::new(),
            epc: Epc::new(config.epc_frames),
            enclaves: HashMap::new(),
            page_tables: HashMap::new(),
            tlb: Tlb::new(),
            platform_key: [0xA5; 32],
            next_eid: 1,
            stats: MachineStats::default(),
            frame_index: HashMap::new(),
            elide_aex: config.elide_aex,
            elide_handler_invocation: config.elide_handler_invocation,
            transitions: Vec::new(),
            record_transitions: false,
        }
    }

    /// Arm or disarm the enclave-transition log. While armed, every
    /// `EENTER`/`EEXIT`/`ERESUME`/AEX/blocked-resume/SSA-pop appends a
    /// [`TransitionEvent`] for the flight recorder to drain.
    pub fn set_transition_recording(&mut self, on: bool) {
        self.record_transitions = on;
        if !on {
            self.transitions.clear();
        }
    }

    /// Whether the transition log is armed.
    pub fn transition_recording(&self) -> bool {
        self.record_transitions
    }

    /// Drain all transitions recorded since the last drain.
    pub fn take_transitions(&mut self) -> Vec<TransitionEvent> {
        std::mem::take(&mut self.transitions)
    }

    fn note_transition(&mut self, kind: TransitionKind, eid: EnclaveId, tcs: usize) {
        if self.record_transitions {
            self.transitions.push(TransitionEvent {
                kind,
                eid,
                tcs,
                cycles: self.clock.now(),
            });
        }
    }

    /// Whether the AEX-elision optimization is active.
    pub fn elide_aex(&self) -> bool {
        self.elide_aex
    }

    /// Whether the no-upcall (in-enclave resume) variant is active.
    pub fn elide_handler_invocation(&self) -> bool {
        self.elide_handler_invocation
    }

    /// Event counters.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// TLB statistics (fills drive the Autarky check-overhead analysis).
    pub fn tlb_stats(&self) -> (u64, u64, u64) {
        (self.tlb.fills(), self.tlb.hits(), self.tlb.flushes())
    }

    /// Free EPC frames remaining.
    pub fn epc_free_frames(&self) -> usize {
        self.epc.free_frames()
    }

    /// Total EPC frames.
    pub fn epc_total_frames(&self) -> usize {
        self.epc.total_frames()
    }

    /// EPC frames currently held by `eid`.
    pub fn epc_frames_of(&self, eid: EnclaveId) -> usize {
        self.epc.frames_of(eid)
    }

    fn enclave(&self, eid: EnclaveId) -> Result<&EnclaveState, SgxError> {
        self.enclaves.get(&eid).ok_or(SgxError::NoSuchEnclave(eid))
    }

    fn enclave_mut(&mut self, eid: EnclaveId) -> Result<&mut EnclaveState, SgxError> {
        self.enclaves
            .get_mut(&eid)
            .ok_or(SgxError::NoSuchEnclave(eid))
    }

    /// The enclave's SECS, as visible to trusted code.
    pub fn secs(&self, eid: EnclaveId) -> Result<&Secs, SgxError> {
        Ok(&self.enclave(eid)?.secs)
    }

    /// OS access to the address space's page table.
    ///
    /// This is deliberately unguarded: the page table is *untrusted* state
    /// the OS fully controls, which is what makes the controlled channel
    /// possible in the first place.
    pub fn page_table_mut(&mut self, eid: EnclaveId) -> Result<&mut PageTable, SgxError> {
        self.page_tables
            .get_mut(&eid)
            .ok_or(SgxError::NoSuchEnclave(eid))
    }

    /// OS read-only view of the page table.
    pub fn page_table(&self, eid: EnclaveId) -> Result<&PageTable, SgxError> {
        self.page_tables
            .get(&eid)
            .ok_or(SgxError::NoSuchEnclave(eid))
    }

    /// OS-initiated single-page TLB shootdown (IPI).
    pub fn tlb_shootdown(&mut self, eid: EnclaveId, vpn: Vpn) {
        self.clock
            .charge_tagged(CostTag::Paging, self.costs.shootdown_page);
        self.tlb.shootdown(eid, vpn);
    }

    // ----------------------------------------------------------------
    // Enclave lifecycle (privileged instructions).
    // ----------------------------------------------------------------

    /// `ECREATE`: allocate an enclave with the given linear range and
    /// attributes; begins the measurement.
    pub fn ecreate(&mut self, base: Va, size: u64, attributes: Attributes) -> EnclaveId {
        let eid = EnclaveId(self.next_eid);
        self.next_eid += 1;
        let secs = Secs {
            base,
            size,
            attributes,
            measurement: [0; 32],
            initialized: false,
            terminated: false,
        };
        self.enclaves.insert(
            eid,
            EnclaveState {
                building: Some(Measurement::start(base.0, size, attributes)),
                secs,
                tcs: Vec::new(),
                next_version: HashMap::new(),
                outstanding: HashMap::new(),
            },
        );
        self.page_tables.insert(eid, PageTable::new());
        eid
    }

    /// `EADD` + `EEXTEND`: add and measure an initial page. Returns the
    /// EPC frame; the OS still has to map it in the page table.
    pub fn eadd(
        &mut self,
        eid: EnclaveId,
        vpn: Vpn,
        page_type: PageType,
        perms: Perms,
        contents: Option<&[u8; PAGE_SIZE]>,
    ) -> Result<Frame, SgxError> {
        let state = self
            .enclaves
            .get_mut(&eid)
            .ok_or(SgxError::NoSuchEnclave(eid))?;
        if state.secs.initialized {
            return Err(SgxError::LifecycleViolation);
        }
        if !state.secs.contains_page(vpn) {
            return Err(SgxError::OutOfRange(vpn.base()));
        }
        let frame = self.epc.alloc(EpcmEntry {
            valid: true,
            eid,
            vpn,
            page_type,
            perms,
            blocked: false,
            pending: false,
            modified: false,
        })?;
        self.frame_index.insert((eid, vpn), frame);
        if let Some(contents) = contents {
            self.epc.page_mut(frame)?.copy_from_slice(contents);
        }
        let measurement = state
            .building
            .as_mut()
            .ok_or(SgxError::LifecycleViolation)?;
        measurement.add_page(vpn, page_type, perms);
        if let Some(contents) = contents {
            measurement.extend(contents);
        }
        if page_type == PageType::Tcs {
            state.tcs.push(Tcs::new(8));
        }
        Ok(frame)
    }

    /// `EINIT`: finalize the measurement; the enclave becomes runnable.
    pub fn einit(&mut self, eid: EnclaveId) -> Result<(), SgxError> {
        let state = self.enclave_mut(eid)?;
        if state.secs.initialized {
            return Err(SgxError::LifecycleViolation);
        }
        let measurement = state.building.take().ok_or(SgxError::LifecycleViolation)?;
        state.secs.measurement = measurement.finalize();
        state.secs.initialized = true;
        if state.tcs.is_empty() {
            // Provide one implicit TCS so minimal tests can run.
            state.tcs.push(Tcs::new(8));
        }
        Ok(())
    }

    /// `EREPORT`: produce an attestation report with `report_data`.
    pub fn ereport(&self, eid: EnclaveId, report_data: [u8; 64]) -> Result<Report, SgxError> {
        let state = self.enclave(eid)?;
        if !state.secs.initialized {
            return Err(SgxError::LifecycleViolation);
        }
        Ok(make_report(
            &self.platform_key,
            state.secs.measurement,
            state.secs.attributes,
            report_data,
        ))
    }

    /// The platform report key (for verifier-side tests only).
    pub fn platform_key(&self) -> &[u8; 32] {
        &self.platform_key
    }

    /// Trusted-runtime request: terminate the enclave (attack response).
    pub fn terminate(&mut self, eid: EnclaveId) -> Result<(), SgxError> {
        self.enclave_mut(eid)?.secs.terminated = true;
        Ok(())
    }

    /// Whether the enclave has been terminated.
    pub fn is_terminated(&self, eid: EnclaveId) -> bool {
        self.enclaves
            .get(&eid)
            .map(|s| s.secs.terminated)
            .unwrap_or(true)
    }

    // ----------------------------------------------------------------
    // Entry and exit.
    // ----------------------------------------------------------------

    /// `EENTER`: enter the enclave on `tcs`. Clears the Autarky
    /// pending-exception flag (§5.1.3).
    pub fn eenter(&mut self, eid: EnclaveId, tcs: usize) -> Result<(), SgxError> {
        let cost = self.costs.eenter;
        let state = self.enclave_mut(eid)?;
        if !state.secs.initialized {
            return Err(SgxError::LifecycleViolation);
        }
        if state.secs.terminated {
            return Err(SgxError::Terminated);
        }
        let t = state.tcs.get_mut(tcs).ok_or(SgxError::BadTcs(tcs))?;
        t.pending_exception = false;
        t.active = true;
        self.stats.eenters += 1;
        self.clock.charge_tagged(CostTag::HandlerInvocation, cost);
        self.tlb.flush_all();
        self.note_transition(TransitionKind::Eenter, eid, tcs);
        Ok(())
    }

    /// `EEXIT`: leave the enclave.
    pub fn eexit(&mut self, eid: EnclaveId, tcs: usize) -> Result<(), SgxError> {
        let cost = self.costs.eexit;
        let state = self.enclave_mut(eid)?;
        let t = state.tcs.get_mut(tcs).ok_or(SgxError::BadTcs(tcs))?;
        t.active = false;
        self.clock.charge_tagged(CostTag::HandlerInvocation, cost);
        self.tlb.flush_all();
        self.note_transition(TransitionKind::Eexit, eid, tcs);
        Ok(())
    }

    /// `ERESUME`: resume after an AEX, restoring the saved context.
    ///
    /// Under Autarky this *fails* while the pending-exception flag is set,
    /// which is the change that forces the OS to re-enter the enclave
    /// through its (fault-aware) entry point instead of silently resuming.
    pub fn eresume(&mut self, eid: EnclaveId, tcs: usize) -> Result<(), SgxError> {
        let cost = self.costs.eresume;
        let state = self.enclave_mut(eid)?;
        if state.secs.terminated {
            return Err(SgxError::Terminated);
        }
        let t = state.tcs.get_mut(tcs).ok_or(SgxError::BadTcs(tcs))?;
        if t.pending_exception {
            self.note_transition(TransitionKind::ResumeBlocked, eid, tcs);
            return Err(SgxError::ResumeBlocked);
        }
        if t.ssa.pop().is_none() {
            return Err(SgxError::LifecycleViolation);
        }
        t.active = true;
        self.stats.eresumes += 1;
        self.clock.charge_tagged(CostTag::Preemption, cost);
        self.tlb.flush_all();
        self.note_transition(TransitionKind::Eresume, eid, tcs);
        Ok(())
    }

    /// Trusted runtime: peek at the top SSA frame's exception info.
    pub fn ssa_exinfo(&self, eid: EnclaveId, tcs: usize) -> Result<Option<SsaExInfo>, SgxError> {
        let state = self.enclave(eid)?;
        let t = state.tcs.get(tcs).ok_or(SgxError::BadTcs(tcs))?;
        Ok(t.ssa.last().and_then(|f| f.exinfo))
    }

    /// Trusted runtime: current SSA stack depth (re-entrancy detection).
    pub fn ssa_depth(&self, eid: EnclaveId, tcs: usize) -> Result<usize, SgxError> {
        let state = self.enclave(eid)?;
        Ok(state.tcs.get(tcs).ok_or(SgxError::BadTcs(tcs))?.ssa_depth())
    }

    /// Whether the pending-exception flag is set (OS can probe this only
    /// indirectly, via `ERESUME` failing).
    pub fn pending_exception(&self, eid: EnclaveId, tcs: usize) -> Result<bool, SgxError> {
        let state = self.enclave(eid)?;
        Ok(state
            .tcs
            .get(tcs)
            .ok_or(SgxError::BadTcs(tcs))?
            .pending_exception)
    }

    // ----------------------------------------------------------------
    // Demand paging: SGXv1 privileged instructions.
    // ----------------------------------------------------------------

    /// `EBLOCK`: mark a page blocked in preparation for eviction. Further
    /// TLB fills for it fault.
    pub fn eblock(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<(), SgxError> {
        let frame = self.frame_of(eid, vpn)?;
        self.epc.entry_mut(frame)?.blocked = true;
        Ok(())
    }

    /// `ETRACK` + IPIs: flush all of the enclave's cached translations so
    /// blocked pages cannot be accessed through stale TLB entries.
    pub fn etrack(&mut self, eid: EnclaveId) -> Result<(), SgxError> {
        self.enclave(eid)?;
        self.clock
            .charge_tagged(CostTag::Paging, self.costs.shootdown_page);
        self.tlb.shootdown_enclave(eid);
        Ok(())
    }

    /// `EWB`: evict a blocked page, returning the sealed blob that the OS
    /// stores in untrusted memory. Frees the EPC frame.
    pub fn ewb(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<SealedPage, SgxError> {
        let frame = self.frame_of(eid, vpn)?;
        let entry = self.epc.entry(frame)?.clone();
        if !entry.blocked {
            return Err(SgxError::NotBlocked(vpn));
        }
        let state = self
            .enclaves
            .get_mut(&eid)
            .ok_or(SgxError::NoSuchEnclave(eid))?;
        let version = {
            let v = state.next_version.entry(vpn).or_insert(0);
            *v += 1;
            *v
        };
        state.outstanding.insert(vpn, version);
        let contents = self.epc.page(frame)?;
        let sealed = seal_page(&self.platform_key, eid, vpn, version, entry.perms, contents);
        self.epc.free(frame)?;
        self.frame_index.remove(&(eid, vpn));
        self.stats.ewbs += 1;
        self.clock
            .charge_tagged(CostTag::Paging, self.costs.ewb_page);
        Ok(sealed)
    }

    /// `ELDU`: reload a sealed page into a fresh EPC frame, verifying
    /// authenticity and anti-replay freshness. The OS must then remap the
    /// page table entry.
    pub fn eldu(&mut self, eid: EnclaveId, sealed: &SealedPage) -> Result<Frame, SgxError> {
        if sealed.eid != eid {
            return Err(SgxError::SealBroken);
        }
        {
            let state = self.enclave(eid)?;
            match state.outstanding.get(&sealed.vpn) {
                Some(&v) if v == sealed.version => {}
                Some(_) => return Err(SgxError::Replay(sealed.vpn)),
                None => return Err(SgxError::Replay(sealed.vpn)),
            }
        }
        let contents = open_page(&self.platform_key, sealed).map_err(|_| SgxError::SealBroken)?;
        let frame = self.epc.alloc(EpcmEntry {
            valid: true,
            eid,
            vpn: sealed.vpn,
            page_type: PageType::Reg,
            perms: sealed.perms,
            blocked: false,
            pending: false,
            modified: false,
        })?;
        self.epc.page_mut(frame)?.copy_from_slice(&contents[..]);
        self.frame_index.insert((eid, sealed.vpn), frame);
        let state = self.enclave_mut(eid)?;
        state.outstanding.remove(&sealed.vpn);
        self.stats.eldus += 1;
        self.clock
            .charge_tagged(CostTag::Paging, self.costs.eldu_page);
        Ok(frame)
    }

    // ----------------------------------------------------------------
    // Dynamic memory management: SGXv2 instructions.
    // ----------------------------------------------------------------

    /// `EAUG`: OS adds a zeroed *pending* page to a running enclave.
    pub fn eaug(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<Frame, SgxError> {
        let state = self.enclave(eid)?;
        if !state.secs.initialized {
            return Err(SgxError::LifecycleViolation);
        }
        if !state.secs.contains_page(vpn) {
            return Err(SgxError::OutOfRange(vpn.base()));
        }
        let frame = self.epc.alloc(EpcmEntry {
            valid: true,
            eid,
            vpn,
            page_type: PageType::Reg,
            perms: Perms::RW,
            blocked: false,
            pending: true,
            modified: false,
        })?;
        self.frame_index.insert((eid, vpn), frame);
        self.stats.eaugs += 1;
        self.clock.charge_tagged(CostTag::Paging, self.costs.eaug);
        Ok(frame)
    }

    /// `EACCEPT`: enclave confirms a pending page change (EAUG / EMODPR /
    /// EMODT).
    pub fn eaccept(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<(), SgxError> {
        let frame = self.frame_of(eid, vpn)?;
        let cost = self.costs.eaccept;
        let entry = self.epc.entry_mut(frame)?;
        if !entry.pending && !entry.modified {
            return Err(SgxError::PendingStateMismatch(vpn));
        }
        entry.pending = false;
        entry.modified = false;
        self.stats.eaccepts += 1;
        self.clock.charge_tagged(CostTag::Paging, cost);
        Ok(())
    }

    /// `EACCEPTCOPY`: enclave initializes a pending `EAUG` page with
    /// `contents` and accepts it in one step.
    pub fn eacceptcopy(
        &mut self,
        eid: EnclaveId,
        vpn: Vpn,
        contents: &[u8; PAGE_SIZE],
        perms: Perms,
    ) -> Result<(), SgxError> {
        let frame = self.frame_of(eid, vpn)?;
        let cost = self.costs.eaccept;
        {
            let entry = self.epc.entry_mut(frame)?;
            if !entry.pending {
                return Err(SgxError::PendingStateMismatch(vpn));
            }
            entry.pending = false;
            entry.perms = perms;
        }
        self.epc.page_mut(frame)?.copy_from_slice(contents);
        self.stats.eaccepts += 1;
        self.clock.charge_tagged(CostTag::Paging, cost);
        Ok(())
    }

    /// `EMODPR`: OS restricts a page's EPCM permissions (requires a
    /// subsequent `EACCEPT`).
    pub fn emodpr(&mut self, eid: EnclaveId, vpn: Vpn, perms: Perms) -> Result<(), SgxError> {
        let frame = self.frame_of(eid, vpn)?;
        let cost = self.costs.emod;
        let entry = self.epc.entry_mut(frame)?;
        if !entry.perms.covers(perms) {
            // EMODPR can only reduce permissions.
            return Err(SgxError::PendingStateMismatch(vpn));
        }
        entry.perms = perms;
        entry.modified = true;
        self.clock.charge_tagged(CostTag::Paging, cost);
        Ok(())
    }

    /// `EMODT`: OS changes a page's type to TRIM in preparation for
    /// removal (requires `EACCEPT` then `EREMOVE`).
    pub fn emodt_trim(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<(), SgxError> {
        let frame = self.frame_of(eid, vpn)?;
        let cost = self.costs.emod;
        let entry = self.epc.entry_mut(frame)?;
        entry.page_type = PageType::Trim;
        entry.modified = true;
        self.clock.charge_tagged(CostTag::Paging, cost);
        Ok(())
    }

    /// `EREMOVE`: OS frees a trimmed-and-accepted page (or any page of a
    /// terminated enclave).
    pub fn eremove(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<(), SgxError> {
        let frame = self.frame_of(eid, vpn)?;
        let cost = self.costs.eremove;
        let terminated = self.enclave(eid)?.secs.terminated;
        let entry = self.epc.entry(frame)?;
        let trimmed = entry.page_type == PageType::Trim && !entry.modified;
        if !trimmed && !terminated {
            return Err(SgxError::PendingStateMismatch(vpn));
        }
        self.epc.free(frame)?;
        self.frame_index.remove(&(eid, vpn));
        self.tlb.shootdown(eid, vpn);
        self.clock.charge_tagged(CostTag::Paging, cost);
        Ok(())
    }

    /// Destroy a whole enclave, freeing all its EPC frames (process exit).
    pub fn destroy_enclave(&mut self, eid: EnclaveId) -> Result<(), SgxError> {
        self.enclave(eid)?;
        let frames: Vec<Frame> = self
            .epc
            .iter_valid()
            .filter(|(_, e)| e.eid == eid)
            .map(|(f, _)| f)
            .collect();
        for frame in frames {
            self.epc.free(frame)?;
        }
        self.frame_index.retain(|(e, _), _| *e != eid);
        self.tlb.shootdown_enclave(eid);
        self.enclaves.remove(&eid);
        self.page_tables.remove(&eid);
        Ok(())
    }

    /// Find the EPC frame currently backing `(eid, vpn)` via the EPCM.
    pub fn frame_of(&self, eid: EnclaveId, vpn: Vpn) -> Result<Frame, SgxError> {
        self.frame_index
            .get(&(eid, vpn))
            .copied()
            .ok_or(SgxError::NoSuchPage(vpn))
    }

    /// Whether `(eid, vpn)` is currently backed by an EPC frame.
    pub fn is_resident(&self, eid: EnclaveId, vpn: Vpn) -> bool {
        self.frame_index.contains_key(&(eid, vpn))
    }

    // ----------------------------------------------------------------
    // The access path (TLB miss handler with SGX + Autarky checks).
    // ----------------------------------------------------------------

    /// Translate one access, raising a fault (with AEX) on failure.
    ///
    /// This is the heart of the simulation: it reproduces SGX's modified
    /// TLB-miss handler (§2.1 of the paper) plus Autarky's changes (§5.1).
    pub fn touch(
        &mut self,
        eid: EnclaveId,
        tcs: usize,
        va: Va,
        kind: AccessKind,
    ) -> Result<Frame, AccessError> {
        self.clock
            .charge_tagged(CostTag::Translation, self.costs.tlb_hit);
        let vpn = va.vpn();
        if let Some(entry) = self.tlb.lookup(eid, vpn) {
            if entry.perms.allows(kind) && (!kind.is_write() || entry.dirty_ok) {
                return Ok(entry.frame);
            }
            // Insufficient cached rights: drop the entry and re-walk.
            self.tlb.shootdown(eid, vpn);
        }
        self.fill(eid, tcs, va, kind)
    }

    fn fill(
        &mut self,
        eid: EnclaveId,
        tcs: usize,
        va: Va,
        kind: AccessKind,
    ) -> Result<Frame, AccessError> {
        let vpn = va.vpn();
        let (self_paging, terminated, in_range) = {
            let state = self.enclave(eid)?;
            (
                state.secs.attributes.self_paging,
                state.secs.terminated,
                state.secs.contains(va),
            )
        };
        if terminated {
            return Err(AccessError::Fatal(SgxError::Terminated));
        }
        if !in_range {
            return Err(AccessError::Fatal(SgxError::OutOfRange(va)));
        }
        self.clock
            .charge_tagged(CostTag::Translation, self.costs.tlb_fill);
        if self_paging {
            self.clock
                .charge_tagged(CostTag::Translation, self.costs.autarky_fill_check);
        }

        let pte = self
            .page_tables
            .get(&eid)
            .ok_or(SgxError::NoSuchEnclave(eid))?
            .get(vpn);
        let pte = match pte {
            Some(pte) if pte.present => pte,
            _ => return self.fault(eid, tcs, va, kind, FaultCause::NotPresent),
        };
        if !pte.perms.allows(kind) {
            return self.fault(eid, tcs, va, kind, FaultCause::Permission);
        }

        // SGX-specific checks: the mapped frame must be an EPC page that
        // the EPCM agrees belongs to this enclave at this linear address.
        let entry = match self.epc.entry(pte.frame) {
            Ok(entry) => entry.clone(),
            Err(_) => return self.fault(eid, tcs, va, kind, FaultCause::EpcmMismatch),
        };
        if !entry.valid || entry.eid != eid || entry.vpn != vpn {
            return self.fault(eid, tcs, va, kind, FaultCause::EpcmMismatch);
        }
        if entry.blocked || entry.pending || entry.page_type == PageType::Trim {
            return self.fault(eid, tcs, va, kind, FaultCause::EpcmBlocked);
        }
        if !entry.perms.allows(kind) {
            return self.fault(eid, tcs, va, kind, FaultCause::EpcmMismatch);
        }

        if self_paging {
            // Autarky §5.1.4: the fetched PTE's accessed (and, for writes,
            // dirty) bit must already be set; otherwise treat the PTE as
            // invalid. This removes the OS's A/D-bit side channel.
            if !pte.accessed || (kind.is_write() && !pte.dirty) {
                return self.fault(eid, tcs, va, kind, FaultCause::AdBitsClear);
            }
        } else {
            // Legacy behaviour: hardware sets A/D on fill — observable by
            // the OS, which is the stealthy controlled channel.
            let pt = self
                .page_tables
                .get_mut(&eid)
                .ok_or(SgxError::NoSuchEnclave(eid))?;
            if let Some(p) = pt.get_mut(vpn) {
                p.accessed = true;
                if kind.is_write() {
                    p.dirty = true;
                }
            }
        }

        let effective = Perms {
            r: pte.perms.r && entry.perms.r,
            w: pte.perms.w && entry.perms.w,
            x: pte.perms.x && entry.perms.x,
        };
        let dirty_ok = if self_paging {
            pte.dirty
        } else {
            kind.is_write() || pte.dirty
        };
        self.tlb.fill(
            eid,
            vpn,
            TlbEntry {
                frame: pte.frame,
                perms: effective,
                dirty_ok,
            },
        );
        Ok(pte.frame)
    }

    fn fault(
        &mut self,
        eid: EnclaveId,
        tcs: usize,
        va: Va,
        kind: AccessKind,
        cause: FaultCause,
    ) -> Result<Frame, AccessError> {
        self.stats.faults += 1;
        let elide = self.elide_aex;
        let (base, self_paging) = {
            let state = self.enclave(eid)?;
            (state.secs.base, state.secs.attributes.self_paging)
        };
        {
            let state = self.enclave_mut(eid)?;
            let t = state.tcs.get_mut(tcs).ok_or(SgxError::BadTcs(tcs))?;
            if t.ssa.len() >= t.nssa {
                return Err(AccessError::Fatal(SgxError::SsaOverflow));
            }
            t.ssa.push(SsaFrame {
                exinfo: Some(SsaExInfo { va, kind, cause }),
            });
            if self_paging && !elide {
                t.pending_exception = true;
            }
        }

        if self_paging && elide {
            // Proposed optimization: stay in enclave mode; the hardware
            // simulates a nested re-entry to the handler. No AEX, no OS.
            return Err(AccessError::Fault(FaultEvent {
                eid,
                tcs,
                reported_va: base,
                reported_kind: AccessKind::Read,
                elided: true,
            }));
        }

        // AEX: save context, flush TLB, deliver (masked) fault to the OS.
        self.stats.aexs += 1;
        self.clock
            .charge_tagged(CostTag::Preemption, self.costs.aex);
        self.tlb.flush_all();
        self.clock
            .charge_tagged(CostTag::OsKernel, self.costs.os_fault_handler);
        self.note_transition(TransitionKind::Aex, eid, tcs);

        let (reported_va, reported_kind) = if self_paging {
            // §5.1.2: hide the address and access type; report a read fault
            // at the enclave base.
            (base, AccessKind::Read)
        } else {
            // Legacy SGX masks only the page offset.
            (va.page_base(), kind)
        };
        Err(AccessError::Fault(FaultEvent {
            eid,
            tcs,
            reported_va,
            reported_kind,
            elided: false,
        }))
    }

    /// Pop the top SSA frame without `ERESUME` (used by the elided-AEX
    /// handler path, which never left the enclave).
    pub fn pop_ssa(&mut self, eid: EnclaveId, tcs: usize) -> Result<(), SgxError> {
        let state = self.enclave_mut(eid)?;
        let t = state.tcs.get_mut(tcs).ok_or(SgxError::BadTcs(tcs))?;
        if t.ssa.pop().is_none() {
            return Err(SgxError::LifecycleViolation);
        }
        self.note_transition(TransitionKind::PopSsa, eid, tcs);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Data plane: reads and writes by in-enclave code.
    // ----------------------------------------------------------------

    /// Translate every page covered by `[va, va+len)`, returning the
    /// backing frames in order. Replays like a real faulting instruction:
    /// the first failing translation aborts the access.
    fn translate_range(
        &mut self,
        eid: EnclaveId,
        tcs: usize,
        va: Va,
        len: usize,
        kind: AccessKind,
    ) -> Result<Vec<Frame>, AccessError> {
        let mut frames = Vec::new();
        for vpn in pages_covering(va, len) {
            let touch_at = if vpn == va.vpn() { va } else { vpn.base() };
            frames.push(self.touch(eid, tcs, touch_at, kind)?);
        }
        self.clock.charge(1 + len as u64 / 64);
        Ok(frames)
    }

    /// Read `buf.len()` bytes at `va` as the enclave.
    pub fn read_bytes(
        &mut self,
        eid: EnclaveId,
        tcs: usize,
        va: Va,
        buf: &mut [u8],
    ) -> Result<(), AccessError> {
        let frames = self.translate_range(eid, tcs, va, buf.len(), AccessKind::Read)?;
        let mut copied = 0usize;
        let mut off = va.page_offset();
        for frame in frames {
            let chunk = (PAGE_SIZE - off).min(buf.len() - copied);
            let page = self.epc.page(frame)?;
            buf[copied..copied + chunk].copy_from_slice(&page[off..off + chunk]);
            copied += chunk;
            off = 0;
            if copied == buf.len() {
                break;
            }
        }
        Ok(())
    }

    /// Write `buf` at `va` as the enclave.
    pub fn write_bytes(
        &mut self,
        eid: EnclaveId,
        tcs: usize,
        va: Va,
        buf: &[u8],
    ) -> Result<(), AccessError> {
        let frames = self.translate_range(eid, tcs, va, buf.len(), AccessKind::Write)?;
        let mut copied = 0usize;
        let mut off = va.page_offset();
        for frame in frames {
            let chunk = (PAGE_SIZE - off).min(buf.len() - copied);
            let page = self.epc.page_mut(frame)?;
            page[off..off + chunk].copy_from_slice(&buf[copied..copied + chunk]);
            copied += chunk;
            off = 0;
            if copied == buf.len() {
                break;
            }
        }
        Ok(())
    }

    /// Simulate an instruction fetch at `va` (code-page access).
    pub fn fetch_code(&mut self, eid: EnclaveId, tcs: usize, va: Va) -> Result<(), AccessError> {
        self.touch(eid, tcs, va, AccessKind::Execute).map(|_| ())
    }

    /// Trusted-runtime raw page read (for software eviction): copies the
    /// whole page backing `(eid, vpn)` without going through the TLB.
    pub fn read_own_page(&mut self, eid: EnclaveId, vpn: Vpn) -> Result<Vec<u8>, SgxError> {
        let frame = self.frame_of(eid, vpn)?;
        Ok(self.epc.page(frame)?.to_vec())
    }

    /// Trusted query of the anti-replay Version Array slot for one page:
    /// the version of the currently outstanding evicted blob, or `None`
    /// if the page has no sealed copy outstanding. The runtime uses this
    /// to enforce seal *freshness* (a sealed blob that authenticates but
    /// carries an older version is a downgrade, not a replay — `ELDU`
    /// alone cannot tell the runtime which version it was waiting for).
    pub fn outstanding_version(&self, eid: EnclaveId, vpn: Vpn) -> Result<Option<u64>, SgxError> {
        Ok(self.enclave(eid)?.outstanding.get(&vpn).copied())
    }

    /// Capture a fully-built enclave (and the machine timing state its
    /// continuation depends on) into a plaintext [`EnclaveCapture`].
    ///
    /// This models the pause side of checkpoint/restore: the machine is
    /// about to lose power, so everything the enclave needs to continue
    /// byte-identically — resident pages, EPCM metadata, page table, TLB
    /// warmth, SSA stacks, version arrays, clock and event counters — is
    /// exported in deterministic (page-sorted) order. The caller is
    /// responsible for sealing the capture before it leaves trusted
    /// hands; the machine itself never emits it to the OS.
    ///
    /// Fails with [`SgxError::LifecycleViolation`] if the enclave is not
    /// yet initialized (a half-built enclave has no meaningful
    /// continuation).
    pub fn capture_enclave(&self, eid: EnclaveId) -> Result<EnclaveCapture, SgxError> {
        let state = self.enclave(eid)?;
        if !state.secs.initialized || state.building.is_some() {
            return Err(SgxError::LifecycleViolation);
        }
        let mut pages = Vec::new();
        for (frame, entry) in self.epc.iter_valid() {
            if entry.eid != eid {
                continue;
            }
            pages.push(PageCapture {
                vpn: entry.vpn,
                page_type: entry.page_type,
                perms: entry.perms,
                blocked: entry.blocked,
                pending: entry.pending,
                modified: entry.modified,
                contents: self.epc.page(frame)?.to_vec(),
            });
        }
        pages.sort_by_key(|p| p.vpn.0);
        let mut ptes: Vec<(Vpn, Pte)> = self.page_table(eid)?.iter().collect();
        ptes.sort_by_key(|&(vpn, _)| vpn.0);
        let mut next_version: Vec<(Vpn, u64)> =
            state.next_version.iter().map(|(&v, &n)| (v, n)).collect();
        next_version.sort_by_key(|&(vpn, _)| vpn.0);
        let mut outstanding: Vec<(Vpn, u64)> =
            state.outstanding.iter().map(|(&v, &n)| (v, n)).collect();
        outstanding.sort_by_key(|&(vpn, _)| vpn.0);
        let tcs = state
            .tcs
            .iter()
            .map(|t| TcsCapture {
                ssa: t.ssa.clone(),
                nssa: t.nssa,
                pending_exception: t.pending_exception,
                active: t.active,
            })
            .collect();
        Ok(EnclaveCapture {
            eid,
            secs: state.secs.clone(),
            tcs,
            next_version,
            outstanding,
            pages,
            ptes,
            tlb: self.tlb.entries_of(eid),
            clock_cycles: self.clock.now(),
            clock_tagged: self.clock.tag_totals(),
            stats: self.stats.clone(),
            tlb_fills: self.tlb.fills(),
            tlb_hits: self.tlb.hits(),
            tlb_flushes: self.tlb.flushes(),
        })
    }

    /// Rebuild a captured enclave on this machine (the restore side of
    /// checkpoint/restore, modeling `ELDU`-style reconstruction of the
    /// whole enclave at once).
    ///
    /// EPC frames are re-allocated fresh — the captured frame numbers
    /// died with the old machine — and the present PTEs, TLB entries and
    /// frame index are rewritten consistently to the new allocation.
    /// Machine-global timing state (clock, stats, TLB counters) is
    /// overwritten from the capture so the continuation is
    /// byte-identical; restore therefore targets a *fresh* machine built
    /// with the same [`MachineConfig`]. On error the machine may hold a
    /// partially-restored enclave and must be discarded.
    ///
    /// Callers are responsible for freshness: this method checks
    /// structural integrity (unseal happens upstream), not whether the
    /// capture is the *latest* one. Fails with
    /// [`SgxError::LifecycleViolation`] if the enclave id already exists
    /// and [`SgxError::SealBroken`] on a malformed page capture.
    pub fn restore_enclave(&mut self, capture: &EnclaveCapture) -> Result<(), SgxError> {
        self.restore_enclave_inner(capture, true)
    }

    /// Rebuild a captured enclave on a machine that *kept running* while
    /// the enclave was down (fleet in-place restart: neighbors sharing
    /// this EPC never stopped).
    ///
    /// Identical to [`Machine::restore_enclave`] except that
    /// machine-global timing state — the clock, event stats, and TLB
    /// counters — is left at its live values instead of being rewound to
    /// the capture's. The restored enclave's *contents* are still
    /// byte-identical to the capture; only the shared wall-clock moved
    /// on, exactly as a real restart on a busy host would see.
    pub fn restore_enclave_shared(&mut self, capture: &EnclaveCapture) -> Result<(), SgxError> {
        self.restore_enclave_inner(capture, false)
    }

    fn restore_enclave_inner(
        &mut self,
        capture: &EnclaveCapture,
        overwrite_timing: bool,
    ) -> Result<(), SgxError> {
        let eid = capture.eid;
        if self.enclaves.contains_key(&eid) {
            return Err(SgxError::LifecycleViolation);
        }
        if !capture.secs.initialized {
            return Err(SgxError::LifecycleViolation);
        }
        let mut new_frames: HashMap<Vpn, Frame> = HashMap::new();
        for page in &capture.pages {
            if page.contents.len() != PAGE_SIZE {
                return Err(SgxError::SealBroken);
            }
            let frame = self.epc.alloc(EpcmEntry {
                valid: true,
                eid,
                vpn: page.vpn,
                page_type: page.page_type,
                perms: page.perms,
                blocked: page.blocked,
                pending: page.pending,
                modified: page.modified,
            })?;
            self.epc.page_mut(frame)?.copy_from_slice(&page.contents);
            self.frame_index.insert((eid, page.vpn), frame);
            new_frames.insert(page.vpn, frame);
        }
        let mut table = PageTable::new();
        for &(vpn, pte) in &capture.ptes {
            let mut pte = pte;
            if let Some(&frame) = new_frames.get(&vpn) {
                pte.frame = frame;
            }
            table.map(vpn, pte);
        }
        self.page_tables.insert(eid, table);
        for &(vpn, entry) in &capture.tlb {
            let mut entry = entry;
            if let Some(&frame) = new_frames.get(&vpn) {
                entry.frame = frame;
            }
            self.tlb.reinstall(eid, vpn, entry);
        }
        let tcs = capture
            .tcs
            .iter()
            .map(|c| {
                let mut t = Tcs::new(c.nssa);
                t.ssa = c.ssa.clone();
                t.pending_exception = c.pending_exception;
                t.active = c.active;
                t
            })
            .collect();
        self.enclaves.insert(
            eid,
            EnclaveState {
                secs: capture.secs.clone(),
                tcs,
                building: None,
                next_version: capture.next_version.iter().copied().collect(),
                outstanding: capture.outstanding.iter().copied().collect(),
            },
        );
        if overwrite_timing {
            self.clock = Clock::from_parts(capture.clock_cycles, capture.clock_tagged);
            self.stats = capture.stats.clone();
            self.tlb
                .restore_counters(capture.tlb_fills, capture.tlb_hits, capture.tlb_flushes);
        }
        self.next_eid = self.next_eid.max(eid.0 + 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::Pte;

    fn build_enclave(machine: &mut Machine, self_paging: bool, pages: u64) -> EnclaveId {
        let base = Va(0x100000);
        let eid = machine.ecreate(
            base,
            pages * PAGE_SIZE as u64,
            Attributes {
                self_paging,
                debug: false,
            },
        );
        for i in 0..pages {
            let vpn = Vpn(base.vpn().0 + i);
            let frame = machine
                .eadd(eid, vpn, PageType::Reg, Perms::RW, None)
                .expect("eadd");
            machine.page_table_mut(eid).expect("pt").map(
                vpn,
                Pte {
                    present: true,
                    frame,
                    perms: Perms::RW,
                    accessed: true,
                    dirty: true,
                },
            );
        }
        machine.einit(eid).expect("einit");
        machine.eenter(eid, 0).expect("eenter");
        eid
    }

    #[test]
    fn basic_read_write() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, false, 4);
        let va = Va(0x100010);
        machine
            .write_bytes(eid, 0, va, &[1, 2, 3, 4])
            .expect("write");
        let mut buf = [0u8; 4];
        machine.read_bytes(eid, 0, va, &mut buf).expect("read");
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn cross_page_access() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, false, 4);
        let va = Va(0x100000 + PAGE_SIZE as u64 - 2);
        let data = [9u8, 8, 7, 6];
        machine
            .write_bytes(eid, 0, va, &data)
            .expect("write spans pages");
        let mut buf = [0u8; 4];
        machine
            .read_bytes(eid, 0, va, &mut buf)
            .expect("read spans pages");
        assert_eq!(buf, [9, 8, 7, 6]);
    }

    #[test]
    fn unmapped_page_faults_with_page_granular_report() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, false, 4);
        machine
            .page_table_mut(eid)
            .expect("pt")
            .clear_present(Vpn(0x101));
        machine.tlb_shootdown(eid, Vpn(0x101));
        let err = machine
            .read_bytes(eid, 0, Va(0x101123), &mut [0u8; 1])
            .expect_err("must fault");
        match err {
            AccessError::Fault(f) => {
                // Legacy: page base reported (offset masked), true kind.
                assert_eq!(f.reported_va, Va(0x101000));
                assert_eq!(f.reported_kind, AccessKind::Read);
                assert!(!f.elided);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn self_paging_fault_fully_masked() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 4);
        machine
            .page_table_mut(eid)
            .expect("pt")
            .clear_present(Vpn(0x102));
        machine.tlb_shootdown(eid, Vpn(0x102));
        let err = machine
            .write_bytes(eid, 0, Va(0x102abc), &[0u8; 1])
            .expect_err("must fault");
        match err {
            AccessError::Fault(f) => {
                assert_eq!(f.reported_va, Va(0x100000), "enclave base, not the page");
                assert_eq!(f.reported_kind, AccessKind::Read, "kind masked");
            }
            other => panic!("unexpected: {other:?}"),
        }
        // Pending-exception flag is set; ERESUME must fail.
        assert!(machine.pending_exception(eid, 0).expect("tcs"));
        assert_eq!(machine.eresume(eid, 0), Err(SgxError::ResumeBlocked));
        // EENTER clears the flag; trusted code can then see the real info.
        machine.eenter(eid, 0).expect("re-enter");
        let info = machine.ssa_exinfo(eid, 0).expect("tcs").expect("exinfo");
        assert_eq!(info.va, Va(0x102abc));
        assert_eq!(info.kind, AccessKind::Write);
        assert_eq!(info.cause, FaultCause::NotPresent);
    }

    #[test]
    fn legacy_silent_resume_works() {
        // The vanilla controlled channel: unmap, fault, remap, ERESUME —
        // the enclave never learns.
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, false, 4);
        machine
            .page_table_mut(eid)
            .expect("pt")
            .clear_present(Vpn(0x101));
        machine.tlb_shootdown(eid, Vpn(0x101));
        let err = machine.read_bytes(eid, 0, Va(0x101000), &mut [0u8; 1]);
        assert!(matches!(err, Err(AccessError::Fault(_))));
        machine
            .page_table_mut(eid)
            .expect("pt")
            .set_present(Vpn(0x101));
        machine
            .eresume(eid, 0)
            .expect("silent resume allowed on legacy");
        machine
            .read_bytes(eid, 0, Va(0x101000), &mut [0u8; 1])
            .expect("access retries fine");
    }

    #[test]
    fn ad_bit_precondition_faults_self_paging() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 4);
        // OS clears A/D to monitor accesses.
        machine
            .page_table_mut(eid)
            .expect("pt")
            .clear_accessed_dirty(Vpn(0x101));
        machine.tlb_shootdown(eid, Vpn(0x101));
        let err = machine
            .read_bytes(eid, 0, Va(0x101000), &mut [0u8; 1])
            .expect_err("A-bit clear must fault");
        assert!(matches!(err, AccessError::Fault(_)));
        machine.eenter(eid, 0).expect("re-enter");
        let info = machine.ssa_exinfo(eid, 0).expect("tcs").expect("exinfo");
        assert_eq!(info.cause, FaultCause::AdBitsClear);
    }

    #[test]
    fn legacy_ad_bits_observable() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, false, 4);
        machine
            .page_table_mut(eid)
            .expect("pt")
            .clear_accessed_dirty(Vpn(0x101));
        machine.tlb_shootdown(eid, Vpn(0x101));
        // Enclave reads the page: hardware silently sets A.
        machine
            .read_bytes(eid, 0, Va(0x101000), &mut [0u8; 1])
            .expect("read succeeds on legacy");
        let pte = machine
            .page_table(eid)
            .expect("pt")
            .get(Vpn(0x101))
            .expect("pte");
        assert!(pte.accessed, "leak: OS observes the accessed bit");
        assert!(!pte.dirty);
    }

    #[test]
    fn ewb_eldu_roundtrip() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 4);
        let va = Va(0x101008);
        machine.write_bytes(eid, 0, va, &[0xCC; 8]).expect("write");
        // Evict.
        machine.eblock(eid, Vpn(0x101)).expect("eblock");
        machine.etrack(eid).expect("etrack");
        let sealed = machine.ewb(eid, Vpn(0x101)).expect("ewb");
        machine.page_table_mut(eid).expect("pt").unmap(Vpn(0x101));
        let free_before = machine.epc_free_frames();
        // Reload.
        let frame = machine.eldu(eid, &sealed).expect("eldu");
        assert_eq!(machine.epc_free_frames(), free_before - 1);
        machine.page_table_mut(eid).expect("pt").map(
            Vpn(0x101),
            Pte {
                present: true,
                frame,
                perms: Perms::RW,
                accessed: true,
                dirty: true,
            },
        );
        let mut buf = [0u8; 8];
        machine.read_bytes(eid, 0, va, &mut buf).expect("read");
        assert_eq!(buf, [0xCC; 8]);
    }

    #[test]
    fn eldu_replay_rejected() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 4);
        machine.eblock(eid, Vpn(0x101)).expect("eblock");
        machine.etrack(eid).expect("etrack");
        let sealed = machine.ewb(eid, Vpn(0x101)).expect("ewb");
        machine.eldu(eid, &sealed).expect("first load ok");
        assert!(matches!(
            machine.eldu(eid, &sealed),
            Err(SgxError::Replay(_)) | Err(SgxError::EpcFull)
        ));
    }

    #[test]
    fn ewb_requires_block() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 4);
        assert!(matches!(
            machine.ewb(eid, Vpn(0x101)),
            Err(SgxError::NotBlocked(Vpn(0x101)))
        ));
    }

    #[test]
    fn blocked_page_faults_on_access() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, false, 4);
        machine.eblock(eid, Vpn(0x101)).expect("eblock");
        machine.etrack(eid).expect("etrack");
        let err = machine.read_bytes(eid, 0, Va(0x101000), &mut [0u8; 1]);
        assert!(matches!(err, Err(AccessError::Fault(_))));
    }

    #[test]
    fn sgx2_aug_accept_flow() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 8);
        // Trim page 4 (it was EADDed by the builder): emulate dealloc.
        let vpn = Vpn(0x104);
        machine.emodt_trim(eid, vpn).expect("emodt");
        machine.eaccept(eid, vpn).expect("eaccept");
        machine.eremove(eid, vpn).expect("eremove");
        machine.page_table_mut(eid).expect("pt").unmap(vpn);
        // Re-add dynamically.
        let frame = machine.eaug(eid, vpn).expect("eaug");
        let contents = [0x5Au8; PAGE_SIZE];
        machine
            .eacceptcopy(eid, vpn, &contents, Perms::RW)
            .expect("acceptcopy");
        machine.page_table_mut(eid).expect("pt").map(
            vpn,
            Pte {
                present: true,
                frame,
                perms: Perms::RW,
                accessed: true,
                dirty: true,
            },
        );
        let mut buf = [0u8; 2];
        machine
            .read_bytes(eid, 0, Va(vpn.base().0), &mut buf)
            .expect("read");
        assert_eq!(buf, [0x5A, 0x5A]);
    }

    #[test]
    fn pending_page_not_accessible_before_accept() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 8);
        let vpn = Vpn(0x105);
        machine.emodt_trim(eid, vpn).expect("emodt");
        machine.eaccept(eid, vpn).expect("eaccept");
        machine.eremove(eid, vpn).expect("eremove");
        let frame = machine.eaug(eid, vpn).expect("eaug");
        machine.page_table_mut(eid).expect("pt").map(
            vpn,
            Pte {
                present: true,
                frame,
                perms: Perms::RW,
                accessed: true,
                dirty: true,
            },
        );
        let err = machine.read_bytes(eid, 0, Va(vpn.base().0), &mut [0u8; 1]);
        assert!(
            matches!(err, Err(AccessError::Fault(_))),
            "pending page must fault"
        );
    }

    #[test]
    fn wrong_mapping_caught_by_epcm() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, false, 4);
        // OS remaps page 0x101 to the frame backing 0x102.
        let frame_102 = machine.frame_of(eid, Vpn(0x102)).expect("frame");
        machine.page_table_mut(eid).expect("pt").map(
            Vpn(0x101),
            Pte {
                present: true,
                frame: frame_102,
                perms: Perms::RW,
                accessed: true,
                dirty: true,
            },
        );
        machine.tlb_shootdown(eid, Vpn(0x101));
        let err = machine.read_bytes(eid, 0, Va(0x101000), &mut [0u8; 1]);
        assert!(
            matches!(err, Err(AccessError::Fault(_))),
            "EPCM must veto remap"
        );
    }

    #[test]
    fn terminated_enclave_rejects_entry_and_access() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 4);
        machine.terminate(eid).expect("terminate");
        assert_eq!(machine.eenter(eid, 0), Err(SgxError::Terminated));
        let err = machine.read_bytes(eid, 0, Va(0x100000), &mut [0u8; 1]);
        assert!(matches!(err, Err(AccessError::Fatal(SgxError::Terminated))));
    }

    #[test]
    fn measurement_attests_self_paging() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 2);
        let report = machine.ereport(eid, [0; 64]).expect("report");
        assert!(report.attributes.self_paging);
        assert!(crate::attest::verify_report(
            machine.platform_key(),
            &report
        ));
    }

    #[test]
    fn elide_aex_skips_os() {
        let mut machine = Machine::new(MachineConfig {
            elide_aex: true,
            ..Default::default()
        });
        let eid = build_enclave(&mut machine, true, 4);
        machine
            .page_table_mut(eid)
            .expect("pt")
            .clear_present(Vpn(0x101));
        machine.tlb_shootdown(eid, Vpn(0x101));
        let before_aex = machine.stats().aexs;
        let err = machine
            .read_bytes(eid, 0, Va(0x101000), &mut [0u8; 1])
            .expect_err("faults");
        match err {
            AccessError::Fault(f) => assert!(f.elided),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(machine.stats().aexs, before_aex, "no AEX performed");
        // The handler (in-enclave) resolves and pops SSA without ERESUME.
        machine
            .page_table_mut(eid)
            .expect("pt")
            .set_present(Vpn(0x101));
        machine.pop_ssa(eid, 0).expect("pop");
        machine
            .read_bytes(eid, 0, Va(0x101000), &mut [0u8; 1])
            .expect("replay succeeds");
    }

    #[test]
    fn ssa_overflow_detected() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 4);
        machine
            .page_table_mut(eid)
            .expect("pt")
            .clear_present(Vpn(0x101));
        machine.tlb_shootdown(eid, Vpn(0x101));
        let mut overflowed = false;
        for _ in 0..20 {
            match machine.read_bytes(eid, 0, Va(0x101000), &mut [0u8; 1]) {
                Err(AccessError::Fault(_)) => {
                    machine.eenter(eid, 0).expect("enter handler");
                    // Handler does not resolve; access replayed (nested).
                }
                Err(AccessError::Fatal(SgxError::SsaOverflow)) => {
                    overflowed = true;
                    break;
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(overflowed, "repeated unresolved faults must exhaust SSA");
    }

    #[test]
    fn epc_exhaustion_reported() {
        let mut machine = Machine::new(MachineConfig {
            epc_frames: 2,
            ..Default::default()
        });
        let base = Va(0x100000);
        let eid = machine.ecreate(base, 16 * PAGE_SIZE as u64, Attributes::default());
        machine
            .eadd(eid, Vpn(0x100), PageType::Reg, Perms::RW, None)
            .expect("first");
        machine
            .eadd(eid, Vpn(0x101), PageType::Reg, Perms::RW, None)
            .expect("second");
        assert_eq!(
            machine.eadd(eid, Vpn(0x102), PageType::Reg, Perms::RW, None),
            Err(SgxError::EpcFull)
        );
    }

    #[test]
    fn destroy_frees_frames() {
        let mut machine = Machine::new(MachineConfig::default());
        let free0 = machine.epc_free_frames();
        let eid = build_enclave(&mut machine, false, 4);
        assert_eq!(machine.epc_free_frames(), free0 - 4);
        machine.destroy_enclave(eid).expect("destroy");
        assert_eq!(machine.epc_free_frames(), free0);
    }

    #[test]
    fn tlb_fill_counter_counts_unique_pages() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, false, 4);
        let (fills0, _, _) = machine.tlb_stats();
        for _ in 0..10 {
            machine
                .read_bytes(eid, 0, Va(0x100000), &mut [0u8; 1])
                .expect("read");
        }
        let (fills1, hits1, _) = machine.tlb_stats();
        assert_eq!(fills1 - fills0, 1, "one fill, then hits");
        assert!(hits1 >= 9);
    }

    #[test]
    fn capture_restore_round_trip_continues_byte_identically() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 4);
        machine
            .write_bytes(eid, 0, Va(0x100010), &[0xCA, 0xFE])
            .expect("write");
        let capture = machine.capture_enclave(eid).expect("capture");

        // The old machine dies; a fresh one with the same config takes over.
        let mut fresh = Machine::new(MachineConfig::default());
        fresh.restore_enclave(&capture).expect("restore");

        // Contents, identity and timing state all carried across.
        let mut buf = [0u8; 2];
        fresh
            .read_bytes(eid, 0, Va(0x100010), &mut buf)
            .expect("read after restore");
        assert_eq!(buf, [0xCA, 0xFE]);
        assert_eq!(
            fresh.capture_enclave(eid).expect("recapture").secs.base,
            capture.secs.base
        );
        assert_eq!(fresh.stats().eenters, capture.stats.eenters);

        // Clock and TLB warmth match the donor at capture time, plus
        // exactly what the post-restore accesses added: the same access
        // on the donor and on the restored machine must cost the same.
        let mut donor = Machine::new(MachineConfig::default());
        let donor_eid = build_enclave(&mut donor, true, 4);
        donor
            .write_bytes(donor_eid, 0, Va(0x100010), &[0xCA, 0xFE])
            .expect("write");
        let mut donor_buf = [0u8; 2];
        donor
            .read_bytes(donor_eid, 0, Va(0x100010), &mut donor_buf)
            .expect("read");
        assert_eq!(fresh.clock.now(), donor.clock.now());
        assert_eq!(fresh.tlb_stats(), donor.tlb_stats());
    }

    #[test]
    fn restore_rejects_existing_enclave_and_preserves_versions() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = build_enclave(&mut machine, true, 4);
        let capture = machine.capture_enclave(eid).expect("capture");
        // Restoring over a live enclave with the same id must fail.
        assert_eq!(
            machine.restore_enclave(&capture),
            Err(SgxError::LifecycleViolation),
        );

        let mut fresh = Machine::new(MachineConfig::default());
        fresh.restore_enclave(&capture).expect("restore");
        // Version-array state survives: no page had been evicted, so no
        // outstanding versions, and new ids don't collide with the
        // restored one.
        assert_eq!(
            fresh.outstanding_version(eid, Vpn(0x100)).expect("query"),
            None
        );
        let other = fresh.ecreate(Va(0x900000), 4 * PAGE_SIZE as u64, Attributes::default());
        assert_ne!(other, eid);
    }

    #[test]
    fn capture_requires_initialized_enclave() {
        let mut machine = Machine::new(MachineConfig::default());
        let eid = machine.ecreate(Va(0x100000), 4 * PAGE_SIZE as u64, Attributes::default());
        assert!(matches!(
            machine.capture_enclave(eid),
            Err(SgxError::LifecycleViolation)
        ));
    }
}
