//! Rollback-protected monotonic counters and snapshot key derivation.
//!
//! Checkpoint/restore turns the classic sealed-storage problem into a
//! *freshness* problem: a sealed snapshot is confidential and
//! integrity-protected, but nothing in the blob itself stops a hostile OS
//! from presenting an **old** (stale) or **already-consumed** (forked)
//! snapshot at restore time — the CopyCat-style state-replay adversary.
//! The defense (Memoir-style) is a platform monotonic counter:
//!
//! * `bump` at snapshot time, and seal the post-bump value into the blob;
//! * at restore, the platform verifies the counter equals the sealed
//!   value, then bumps again so the same blob can never be consumed twice.
//!
//! The [`MonotonicCounter`] models the platform's NVRAM-backed counter
//! (survives machine death, unlike EPC). The value is MAC'd under the
//! platform key so an OS that overwrites the stored bits — it fully
//! controls the NVRAM bus in this model — cannot forge a valid older
//! state. *Hardware monotonicity* (the OS physically cannot de-increment
//! the counter inside the tamper-resistant part) is modeled by the trusted
//! harness owning the `MonotonicCounter` value across machine lifetimes;
//! [`MonotonicCounter::hostile_overwrite`] is the explicit attack
//! primitive for everything the OS *can* do, and is always detected.

use autarky_crypto::{ct_eq, hmac_sha256};

use crate::addr::EnclaveId;
use crate::error::SgxError;

/// Domain-separation prefix for counter MACs.
const COUNTER_DOMAIN: &[u8] = b"autarky-monotonic-counter";

/// Domain-separation prefix for snapshot sealing keys.
const SNAPSHOT_DOMAIN: &[u8] = b"autarky-snapshot-seal";

fn counter_mac(platform_key: &[u8; 32], eid: EnclaveId, value: u64) -> [u8; 32] {
    let mut msg = Vec::with_capacity(COUNTER_DOMAIN.len() + 4 + 8);
    msg.extend_from_slice(COUNTER_DOMAIN);
    msg.extend_from_slice(&eid.0.to_le_bytes());
    msg.extend_from_slice(&value.to_le_bytes());
    hmac_sha256(platform_key, &msg)
}

/// Derive the per-enclave snapshot sealing key from the platform key
/// (stand-in for an `EGETKEY` request with a snapshot key type). Only the
/// enclave id is bound: the key must be derivable *before* the sealed blob
/// is opened, so it cannot depend on anything inside the blob.
pub fn snapshot_seal_key(platform_key: &[u8; 32], eid: EnclaveId) -> [u8; 32] {
    let mut msg = Vec::with_capacity(SNAPSHOT_DOMAIN.len() + 4);
    msg.extend_from_slice(SNAPSHOT_DOMAIN);
    msg.extend_from_slice(&eid.0.to_le_bytes());
    hmac_sha256(platform_key, &msg)
}

/// A platform monotonic counter bound to one enclave identity.
///
/// The struct itself lives in harness (platform) hands and survives
/// [`crate::Machine`] destruction — that is the NVRAM property the whole
/// rollback defense rests on. All reads verify the MAC first, so a
/// counter whose stored bits were overwritten by the OS is reported as
/// [`SgxError::CounterTampered`] rather than silently trusted.
#[derive(Debug, Clone)]
pub struct MonotonicCounter {
    eid: EnclaveId,
    value: u64,
    mac: [u8; 32],
}

impl MonotonicCounter {
    /// Provision a fresh counter (value 0) for `eid`.
    pub fn new(platform_key: &[u8; 32], eid: EnclaveId) -> Self {
        Self {
            eid,
            value: 0,
            mac: counter_mac(platform_key, eid, 0),
        }
    }

    /// The enclave identity this counter is bound to.
    pub fn eid(&self) -> EnclaveId {
        self.eid
    }

    /// Verified read of the counter value.
    pub fn read(&self, platform_key: &[u8; 32]) -> Result<u64, SgxError> {
        let expected = counter_mac(platform_key, self.eid, self.value);
        if !ct_eq(&expected, &self.mac) {
            return Err(SgxError::CounterTampered);
        }
        Ok(self.value)
    }

    /// Verified increment; returns the new value. The increment is the
    /// only legitimate mutation — there is deliberately no `set`.
    pub fn bump(&mut self, platform_key: &[u8; 32]) -> Result<u64, SgxError> {
        let current = self.read(platform_key)?;
        let next = current.checked_add(1).ok_or(SgxError::CounterTampered)?;
        self.value = next;
        self.mac = counter_mac(platform_key, self.eid, next);
        Ok(next)
    }

    /// Attack primitive: overwrite the stored value the way an OS with
    /// NVRAM-bus access could. The MAC is left stale (the OS does not
    /// have the platform key), so the next verified read fails with
    /// [`SgxError::CounterTampered`].
    pub fn hostile_overwrite(&mut self, value: u64) {
        self.value = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [0xA5; 32];
    const E: EnclaveId = EnclaveId(1);

    #[test]
    fn bump_is_monotonic_and_verified() {
        let mut c = MonotonicCounter::new(&KEY, E);
        assert_eq!(c.read(&KEY).expect("fresh"), 0);
        assert_eq!(c.bump(&KEY).expect("bump"), 1);
        assert_eq!(c.bump(&KEY).expect("bump"), 2);
        assert_eq!(c.read(&KEY).expect("verified"), 2);
    }

    #[test]
    fn hostile_overwrite_detected() {
        let mut c = MonotonicCounter::new(&KEY, E);
        c.bump(&KEY).expect("bump");
        c.bump(&KEY).expect("bump");
        c.hostile_overwrite(1);
        assert_eq!(c.read(&KEY), Err(SgxError::CounterTampered));
        assert_eq!(c.bump(&KEY), Err(SgxError::CounterTampered));
    }

    #[test]
    fn wrong_platform_key_detected() {
        let c = MonotonicCounter::new(&KEY, E);
        assert_eq!(c.read(&[0x11; 32]), Err(SgxError::CounterTampered));
    }

    #[test]
    fn counters_are_enclave_bound() {
        let a = MonotonicCounter::new(&KEY, EnclaveId(1));
        let mut b = MonotonicCounter::new(&KEY, EnclaveId(2));
        // Grafting another enclave's (valid) counter MAC does not verify:
        // the MAC binds the enclave id, not just the value.
        b.mac = a.mac;
        assert_eq!(b.read(&KEY), Err(SgxError::CounterTampered));
    }

    #[test]
    fn snapshot_keys_are_per_enclave() {
        let k1 = snapshot_seal_key(&KEY, EnclaveId(1));
        let k2 = snapshot_seal_key(&KEY, EnclaveId(2));
        assert_ne!(k1, k2);
        assert_eq!(k1, snapshot_seal_key(&KEY, EnclaveId(1)));
    }
}
