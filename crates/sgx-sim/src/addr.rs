//! Address and page-number newtypes.
//!
//! The simulator uses 4 KiB pages like SGX. Virtual addresses ([`Va`]) name
//! locations inside an enclave's linear address space; physical frame
//! numbers ([`Frame`]) index the simulated EPC.

/// Page size in bytes (4 KiB, as on x86).
pub const PAGE_SIZE: usize = 4096;

/// Log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;

/// A virtual address inside the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Va(pub u64);

impl Va {
    /// The virtual page number containing this address.
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Offset of this address within its page.
    pub fn page_offset(self) -> usize {
        (self.0 & (PAGE_SIZE as u64 - 1)) as usize
    }

    /// The address rounded down to its page base.
    pub fn page_base(self) -> Va {
        Va(self.0 & !(PAGE_SIZE as u64 - 1))
    }

    /// Whether the address is page-aligned.
    pub fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Checked addition of a byte offset.
    pub fn checked_add(self, off: u64) -> Option<Va> {
        self.0.checked_add(off).map(Va)
    }
}

impl core::fmt::Display for Va {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

impl Vpn {
    /// Base virtual address of this page.
    pub fn base(self) -> Va {
        Va(self.0 << PAGE_SHIFT)
    }

    /// The next page number.
    pub fn next(self) -> Vpn {
        Vpn(self.0 + 1)
    }
}

impl core::fmt::Display for Vpn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// An EPC frame number (index into the simulated enclave page cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frame(pub u32);

impl core::fmt::Display for Frame {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "epc#{}", self.0)
    }
}

/// Identifier of a simulated enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnclaveId(pub u32);

impl core::fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "enclave{}", self.0)
    }
}

/// Iterate over the virtual page numbers covering `[start, start+len)`.
pub fn pages_covering(start: Va, len: usize) -> impl Iterator<Item = Vpn> {
    let first = start.vpn().0;
    let end = start.0 + len.max(1) as u64 - 1;
    let last = Va(end).vpn().0;
    (first..=last).map(Vpn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset() {
        let va = Va(0x1234);
        assert_eq!(va.vpn(), Vpn(1));
        assert_eq!(va.page_offset(), 0x234);
        assert_eq!(va.page_base(), Va(0x1000));
        assert!(!va.is_page_aligned());
        assert!(Va(0x2000).is_page_aligned());
    }

    #[test]
    fn vpn_base_roundtrip() {
        assert_eq!(Vpn(3).base(), Va(0x3000));
        assert_eq!(Vpn(3).base().vpn(), Vpn(3));
        assert_eq!(Vpn(3).next(), Vpn(4));
    }

    #[test]
    fn covering_single_page() {
        let pages: Vec<_> = pages_covering(Va(0x1000), 1).collect();
        assert_eq!(pages, vec![Vpn(1)]);
        let pages: Vec<_> = pages_covering(Va(0x1fff), 1).collect();
        assert_eq!(pages, vec![Vpn(1)]);
    }

    #[test]
    fn covering_spanning_access() {
        let pages: Vec<_> = pages_covering(Va(0x1ffe), 4).collect();
        assert_eq!(pages, vec![Vpn(1), Vpn(2)]);
        let pages: Vec<_> = pages_covering(Va(0x1000), 2 * PAGE_SIZE).collect();
        assert_eq!(pages, vec![Vpn(1), Vpn(2)]);
    }

    #[test]
    fn zero_length_access_touches_one_page() {
        let pages: Vec<_> = pages_covering(Va(0x1000), 0).collect();
        assert_eq!(pages, vec![Vpn(1)]);
    }
}
