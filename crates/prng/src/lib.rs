//! A small, dependency-free, deterministic PRNG for the simulator.
//!
//! Everything random in the reproduction — YCSB key draws, PathORAM leaf
//! assignment, fault-injection schedules, randomized tests — must be
//! seedable and bit-for-bit reproducible across platforms, because the
//! experiments (and the fault-injection determinism guarantee) assert
//! identical observation streams and cycle counts for identical seeds.
//! The standard library has no PRNG and external crates are unavailable
//! in the offline build, so this crate provides one: xoshiro256++ with a
//! SplitMix64 seeder (Blackman & Vigna's reference parameters).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed (SplitMix64 expansion, as
    /// the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)`. `bound` must be non-zero.
    /// Debiased via Lemire-style rejection.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_below(0)");
        // Rejection zone keeps the draw exactly uniform.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            let (hi, lo) = widening_mul(v, bound);
            if lo >= zone || zone == 0 {
                return hi;
            }
        }
    }

    /// Uniform draw from a half-open `u64` range.
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        debug_assert!(range.start < range.end, "empty range");
        range.start + self.gen_below(range.end - range.start)
    }

    /// Uniform draw from a half-open `usize` range.
    pub fn gen_range_usize(&mut self, range: core::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fill `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A fresh generator split off this one (for independent substreams
    /// with a shared root seed).
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

/// Full 128-bit product of two 64-bit values, as `(high, low)`.
fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_below_is_in_range_and_covers() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values drawn");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(100..110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.47..0.53).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2300..2700).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SimRng::seed_from_u64(6);
        let mut a = root.split();
        let mut b = root.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
