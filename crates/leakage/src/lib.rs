//! Quantitative side-channel audit for the Autarky reproduction.
//!
//! The paper's security argument (§5.2) is qualitative: masked fault
//! reports close the page-fault channel, clusters coarsen the residual
//! self-paging channel to anonymity sets, the rate limit bounds it to ε
//! bits per unit of progress, and ORAM paging eliminates it. This crate
//! turns that argument into *numbers* and into a regression gate:
//!
//! * [`trace`] — a compact serializable trace of everything the
//!   adversary observed during a run, built on the `os-sim` wire format,
//!   with a deterministic replay loader;
//! * [`capture`] — the capture hook: a cursor pair over the OS
//!   observation stream and the ORAM bucket log, so a workload phase can
//!   be bracketed and its adversary view extracted without draining
//!   events other consumers need;
//! * [`metrics`] — distinguishability analysis over paired runs:
//!   per-symbol histograms, total-variation distance, a capped
//!   edit-distance diagnostic, leave-one-out nearest-centroid
//!   classification, and the Fano bound converting classifier accuracy
//!   into empirical mutual information (bits);
//! * [`audit`] — the audit harness: K=2 secret classes × N seeds per
//!   (workload × policy) cell, sweeping the unprotected baseline against
//!   rate-limited, clustered, and cached-ORAM self-paging, with
//!   JSON/markdown reports and pass/fail thresholds (baseline must be
//!   distinguishable, ORAM must not be, the rate limit must hold its ε
//!   budget).
//!
//! The `leakage-report` binary runs the audit and exits non-zero when a
//! gate fails; CI runs it on every push.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod capture;
pub mod metrics;
pub mod trace;

pub use audit::{
    policy_names, run_audit, run_audit_filtered, workload_names, AuditConfig, AuditReport,
    CellResult, Gate, RateGate,
};
pub use capture::Capture;
pub use metrics::{
    distinguishability, edit_distance_normalized, normalized_histogram, tv_distance,
    Distinguishability,
};
pub use trace::{Trace, TraceMeta};
