//! Distinguishability analysis over paired secret-class traces.
//!
//! The question the audit asks is operational: *given the adversary's
//! view of a run, can it tell which of two secrets the enclave
//! processed?* The analysis works on symbol sequences (see
//! [`Trace::symbols`](crate::Trace::symbols)):
//!
//! * normalized symbol histograms and total-variation (statistical)
//!   distance between them — the distributional view;
//! * a leave-one-out nearest-centroid classifier whose accuracy, via
//!   Fano's inequality, lower-bounds the mutual information between the
//!   secret bit and the observed trace — the operational view;
//! * a capped, normalized edit distance as a *diagnostic only*: it is
//!   sensitive to trace length, which differs across secrets even under
//!   ORAM (the how-many channel is progress/termination leakage, out of
//!   scope for the which-page channel the paper closes), so it never
//!   gates.
//!
//! Everything is deterministic: no randomness, stable iteration orders.

use std::collections::BTreeMap;

/// Histogram of symbol frequencies, summing to 1 (empty input yields an
/// empty map).
pub fn normalized_histogram(symbols: &[u64]) -> BTreeMap<u64, f64> {
    let mut hist = BTreeMap::new();
    if symbols.is_empty() {
        return hist;
    }
    let weight = 1.0 / symbols.len() as f64;
    for &s in symbols {
        *hist.entry(s).or_insert(0.0) += weight;
    }
    hist
}

/// Total-variation distance between two normalized histograms:
/// `½ Σ |p(x) − q(x)|`, in `[0, 1]`.
pub fn tv_distance(p: &BTreeMap<u64, f64>, q: &BTreeMap<u64, f64>) -> f64 {
    let mut sum = 0.0;
    for (key, &pv) in p {
        sum += (pv - q.get(key).copied().unwrap_or(0.0)).abs();
    }
    for (key, &qv) in q {
        if !p.contains_key(key) {
            sum += qv;
        }
    }
    sum / 2.0
}

/// Levenshtein distance between two symbol sequences, each truncated to
/// `cap` symbols, normalized by the longer (truncated) length. In
/// `[0, 1]`; 0 for two empty sequences.
pub fn edit_distance_normalized(a: &[u64], b: &[u64], cap: usize) -> f64 {
    let a = &a[..a.len().min(cap)];
    let b = &b[..b.len().min(cap)];
    let longest = a.len().max(b.len());
    if longest == 0 {
        return 0.0;
    }
    // Rolling single-row DP.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { diag } else { diag + 1 };
            diag = row[j + 1];
            row[j + 1] = cost.min(row[j] + 1).min(row[j + 1] + 1);
        }
    }
    row[b.len()] as f64 / longest as f64
}

/// Binary entropy `H_b(p)` in bits.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Empirical mutual information (bits) between the secret bit and the
/// trace, from classifier accuracy via Fano: `I ≥ 1 − H_b(err)` for a
/// binary secret. Accuracy at or below chance floors to 0.
pub fn fano_mi(accuracy: f64) -> f64 {
    if accuracy <= 0.5 {
        return 0.0;
    }
    (1.0 - binary_entropy(1.0 - accuracy)).max(0.0)
}

/// The distinguishability summary of one (workload × policy) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Distinguishability {
    /// Mean TV distance between same-class trace pairs (sampling noise
    /// floor; 0 for deterministic policies).
    pub mean_within_tv: f64,
    /// Mean TV distance between cross-class trace pairs.
    pub mean_cross_tv: f64,
    /// Leave-one-out nearest-centroid accuracy over all traces (ties
    /// score ½).
    pub accuracy: f64,
    /// Fano lower bound on the mutual information, in bits per run.
    pub mi_bits: f64,
    /// Mean normalized edit distance between cross-class pairs
    /// (diagnostic; length-sensitive, never gated on).
    pub mean_cross_edit: f64,
    /// Mean trace length (symbols) per class, `[class0, class1]`.
    pub mean_symbols: [f64; 2],
}

/// Edit-distance cap: quadratic cost, so long traces are compared on
/// their first window only.
const EDIT_CAP: usize = 2000;

/// Distances closer than this are a classifier tie. Well above f64
/// accumulation noise for histograms of any realistic trace length,
/// well below any signal the audit cares about.
const TIE_EPSILON: f64 = 1e-9;

/// Analyze two classes of symbol sequences (one sequence per run; at
/// least two runs per class so leave-one-out centroids are defined).
pub fn distinguishability(class0: &[Vec<u64>], class1: &[Vec<u64>]) -> Distinguishability {
    assert!(
        class0.len() >= 2 && class1.len() >= 2,
        "need ≥2 runs per class for leave-one-out analysis"
    );
    let hists: [Vec<BTreeMap<u64, f64>>; 2] = [
        class0.iter().map(|s| normalized_histogram(s)).collect(),
        class1.iter().map(|s| normalized_histogram(s)).collect(),
    ];

    let mut within = MeanAcc::default();
    for class in &hists {
        for (i, hi) in class.iter().enumerate() {
            for hj in &class[i + 1..] {
                within.add(tv_distance(hi, hj));
            }
        }
    }
    let mut cross = MeanAcc::default();
    for hi in &hists[0] {
        for hj in &hists[1] {
            cross.add(tv_distance(hi, hj));
        }
    }

    let mut edit = MeanAcc::default();
    for a in class0 {
        for b in class1 {
            edit.add(edit_distance_normalized(a, b, EDIT_CAP));
        }
    }

    // Leave-one-out nearest-centroid classification.
    let mut correct = 0.0;
    let mut total = 0.0;
    for (ci, class) in hists.iter().enumerate() {
        for (i, held_out) in class.iter().enumerate() {
            let own: Vec<&BTreeMap<u64, f64>> = class
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, h)| h)
                .collect();
            let other: Vec<&BTreeMap<u64, f64>> = hists[1 - ci].iter().collect();
            let d_own = tv_distance(held_out, &centroid(&own));
            let d_other = tv_distance(held_out, &centroid(&other));
            total += 1.0;
            // Ties need an epsilon: the two centroids average different
            // numbers of histograms, so identical traces can still land
            // at distances 0 vs ~1e-17 from accumulation order alone —
            // and a tie misread as a win turns 0 bits into 1 bit.
            if (d_own - d_other).abs() <= TIE_EPSILON {
                correct += 0.5;
            } else if d_own < d_other {
                correct += 1.0;
            }
        }
    }
    let accuracy = correct / total;

    Distinguishability {
        mean_within_tv: within.mean(),
        mean_cross_tv: cross.mean(),
        accuracy,
        mi_bits: fano_mi(accuracy),
        mean_cross_edit: edit.mean(),
        mean_symbols: [
            class0.iter().map(|s| s.len() as f64).sum::<f64>() / class0.len() as f64,
            class1.iter().map(|s| s.len() as f64).sum::<f64>() / class1.len() as f64,
        ],
    }
}

fn centroid(hists: &[&BTreeMap<u64, f64>]) -> BTreeMap<u64, f64> {
    let mut out: BTreeMap<u64, f64> = BTreeMap::new();
    if hists.is_empty() {
        return out;
    }
    let weight = 1.0 / hists.len() as f64;
    for hist in hists {
        for (&key, &value) in *hist {
            *out.entry(key).or_insert(0.0) += value * weight;
        }
    }
    out
}

#[derive(Default)]
struct MeanAcc {
    sum: f64,
    n: u64,
}

impl MeanAcc {
    fn add(&mut self, x: f64) {
        self.sum += x;
        self.n += 1;
    }
    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_distance_extremes() {
        let p = normalized_histogram(&[1, 1, 2, 2]);
        assert_eq!(tv_distance(&p, &p), 0.0);
        let q = normalized_histogram(&[3, 3, 4, 4]);
        assert!((tv_distance(&p, &q) - 1.0).abs() < 1e-12, "disjoint → 1");
        let half = normalized_histogram(&[1, 1, 3, 3]);
        assert!((tv_distance(&p, &half) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance_normalized(&[], &[], 100), 0.0);
        assert_eq!(edit_distance_normalized(&[1, 2, 3], &[1, 2, 3], 100), 0.0);
        assert_eq!(edit_distance_normalized(&[1, 2, 3], &[4, 5, 6], 100), 1.0);
        let d = edit_distance_normalized(&[1, 2, 3, 4], &[1, 2, 9, 4], 100);
        assert!((d - 0.25).abs() < 1e-12, "one substitution in four");
        // The cap truncates: identical prefixes within the cap → 0.
        assert_eq!(edit_distance_normalized(&[1, 2, 7], &[1, 2, 8], 2), 0.0);
    }

    #[test]
    fn entropy_and_fano() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(fano_mi(0.5), 0.0, "chance accuracy → 0 bits");
        assert_eq!(fano_mi(0.3), 0.0, "below chance floors at 0");
        assert!((fano_mi(1.0) - 1.0).abs() < 1e-12, "perfect → 1 bit");
        let mid = fano_mi(0.75);
        assert!(mid > 0.1 && mid < 0.3, "0.75 accuracy ≈ 0.19 bits: {mid}");
    }

    #[test]
    fn separable_classes_are_distinguished() {
        let class0 = vec![vec![1, 2, 3, 4], vec![1, 2, 3, 3], vec![1, 2, 4, 4]];
        let class1 = vec![vec![7, 8, 9, 10], vec![7, 8, 9, 9], vec![7, 8, 10, 10]];
        let d = distinguishability(&class0, &class1);
        assert_eq!(d.accuracy, 1.0);
        assert_eq!(d.mi_bits, 1.0);
        assert!(d.mean_cross_tv > d.mean_within_tv);
        assert!(d.mean_cross_edit > 0.9);
    }

    #[test]
    fn identical_classes_are_indistinguishable() {
        let class0 = vec![vec![1, 2, 3], vec![1, 2, 3]];
        let class1 = vec![vec![1, 2, 3], vec![1, 2, 3]];
        let d = distinguishability(&class0, &class1);
        assert_eq!(d.accuracy, 0.5, "all ties score half");
        assert_eq!(d.mi_bits, 0.0);
        assert_eq!(d.mean_cross_tv, 0.0);
    }

    #[test]
    fn identical_classes_tie_with_odd_run_counts() {
        // Three runs per class: the own-centroid averages 2 histograms
        // (exact halves) while the other-centroid averages 3 (inexact
        // thirds), so without the tie epsilon the accumulation noise
        // masquerades as perfect distinguishability.
        let run = || vec![1, 2, 3, 4, 5, 6, 7];
        let class0 = vec![run(), run(), run()];
        let class1 = vec![run(), run(), run()];
        let d = distinguishability(&class0, &class1);
        assert_eq!(d.accuracy, 0.5, "all ties score half");
        assert_eq!(d.mi_bits, 0.0);
    }

    #[test]
    #[should_panic(expected = "leave-one-out")]
    fn single_run_classes_are_rejected() {
        let _ = distinguishability(&[vec![1]], &[vec![2]]);
    }
}
