//! The serialized adversary trace: what the OS saw, tagged with enough
//! metadata to replay and regroup it.
//!
//! A trace is one run's adversary view — the [`Observation`] stream the
//! `os-sim` kernel records, plus (for ORAM-paged heaps) the untrusted
//! bucket traffic folded in as [`Observation::UntrustedAccess`] events.
//! Serialization reuses the `os-sim` wire grammar, prefixed with one
//! `trace` header line carrying the run coordinates, so a saved artifact
//! is self-describing and `from_text(to_text(t)) == t` exactly.

use std::collections::BTreeMap;

use autarky_os_sim::wire::{self, WireError};
use autarky_os_sim::Observation;

/// Coordinates of one audited run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Protection policy label (no whitespace; e.g. `baseline`,
    /// `rate-limit`, `clusters`, `cached-oram`).
    pub policy: String,
    /// Workload label (no whitespace; e.g. `jpeg`, `spell`).
    pub workload: String,
    /// Which secret class of the pair this run processed (0 or 1).
    pub secret: u32,
    /// Seed index of the run (varies ORAM randomness across repeats).
    pub seed: u64,
}

/// One run's adversary-visible event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Run coordinates.
    pub meta: TraceMeta,
    /// Everything the adversary observed, in order.
    pub events: Vec<Observation>,
}

impl Trace {
    /// Build a trace; labels must be whitespace-free (they live in a
    /// space-separated header line).
    pub fn new(
        policy: &str,
        workload: &str,
        secret: u32,
        seed: u64,
        events: Vec<Observation>,
    ) -> Self {
        assert!(
            !policy.contains(char::is_whitespace) && !workload.contains(char::is_whitespace),
            "trace labels must not contain whitespace"
        );
        Self {
            meta: TraceMeta {
                policy: policy.to_owned(),
                workload: workload.to_owned(),
                secret,
                seed,
            },
            events,
        }
    }

    /// Serialize: a `trace` header line, then one event per line.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "trace policy={} workload={} secret={} seed={}\n",
            self.meta.policy, self.meta.workload, self.meta.secret, self.meta.seed
        );
        out.push_str(&wire::encode_observations(&self.events));
        out
    }

    /// Deserialize a trace produced by [`Trace::to_text`]. Blank lines
    /// and `#` comments between events are tolerated.
    pub fn from_text(text: &str) -> Result<Self, WireError> {
        let bad = |what: &'static str, line: &str| WireError {
            what,
            line: line.to_owned(),
        };
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty trace", ""))?;
        let fields: Vec<&str> = header.split_whitespace().collect();
        let ["trace", kv @ ..] = fields.as_slice() else {
            return Err(bad("trace header", header));
        };
        let mut meta = TraceMeta {
            policy: String::new(),
            workload: String::new(),
            secret: 0,
            seed: 0,
        };
        for field in kv {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| bad("header key=value", header))?;
            match key {
                "policy" => meta.policy = value.to_owned(),
                "workload" => meta.workload = value.to_owned(),
                "secret" => {
                    meta.secret = value.parse().map_err(|_| bad("secret", header))?;
                }
                "seed" => meta.seed = value.parse().map_err(|_| bad("seed", header))?,
                _ => return Err(bad("header key", header)),
            }
        }
        let body: String = lines.map(|l| format!("{l}\n")).collect();
        Ok(Self {
            meta,
            events: wire::decode_observations(&body)?,
        })
    }

    /// Flatten the trace into a symbol sequence for the analysis. Each
    /// event contributes one symbol per *page-granular thing the
    /// adversary learned*: a fault contributes its (page, access-kind),
    /// a fetch/evict batch contributes one symbol per page it names, an
    /// ORAM access contributes its bucket. Symbols from different event
    /// types never collide (each type mixes in its own tag).
    pub fn symbols(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.events.len());
        for event in &self.events {
            match event {
                Observation::Fault { va, kind, .. } => {
                    out.push(sym(1, va.0 >> 12, *kind as u64));
                }
                Observation::FetchSyscall { pages, .. } => {
                    out.extend(pages.iter().map(|p| sym(2, p.0, 0)));
                }
                Observation::EvictSyscall { pages, .. } => {
                    out.extend(pages.iter().map(|p| sym(3, p.0, 0)));
                }
                Observation::AllocSyscall { pages, .. } => {
                    out.extend(pages.iter().map(|p| sym(4, p.0, 0)));
                }
                Observation::SetEnclaveManaged { pages, .. } => {
                    out.extend(pages.iter().map(|p| sym(5, p.0, 0)));
                }
                Observation::SetOsManaged { pages, .. } => {
                    out.extend(pages.iter().map(|p| sym(6, p.0, 0)));
                }
                Observation::UntrustedAccess { key, write } => {
                    out.push(sym(7, *key, *write as u64));
                }
                Observation::DemandPaging { vpn, .. } => out.push(sym(8, vpn.0, 0)),
                Observation::AdBitObserved { vpn, dirty, .. } => {
                    out.push(sym(9, vpn.0, *dirty as u64));
                }
                Observation::FaultInjected { .. } => out.push(sym(10, 0, 0)),
            }
        }
        out
    }

    /// Raw symbol counts (the un-normalized access histogram).
    pub fn page_histogram(&self) -> BTreeMap<u64, u64> {
        let mut hist = BTreeMap::new();
        for s in self.symbols() {
            *hist.entry(s).or_insert(0) += 1;
        }
        hist
    }
}

/// Tagged symbol constructor: splitmix64 finalizer over a tag/value/attr
/// packing, so symbols are well-spread and type-disjoint.
fn sym(tag: u64, value: u64, attr: u64) -> u64 {
    let mut x = tag
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(value)
        .wrapping_add(attr.wrapping_mul(0x2545_F491_4F6C_DD1D));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_sgx_sim::{AccessKind, EnclaveId, Va, Vpn};

    fn sample_events() -> Vec<Observation> {
        vec![
            Observation::Fault {
                eid: EnclaveId(1),
                va: Va(0x1000_0000 << 12),
                kind: AccessKind::Read,
            },
            Observation::FetchSyscall {
                eid: EnclaveId(1),
                pages: vec![Vpn(7), Vpn(8)],
            },
            Observation::UntrustedAccess {
                key: 42,
                write: true,
            },
        ]
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let trace = Trace::new("rate-limit", "jpeg", 1, 9, sample_events());
        let back = Trace::from_text(&trace.to_text()).expect("decode");
        assert_eq!(back, trace);
    }

    #[test]
    fn roundtrip_tolerates_comments_and_blanks() {
        let trace = Trace::new("baseline", "font", 0, 3, sample_events());
        let mut text = trace.to_text();
        text.push_str("\n# trailing comment\n\n");
        assert_eq!(Trace::from_text(&text).expect("decode"), trace);
    }

    #[test]
    fn malformed_headers_are_rejected() {
        assert!(Trace::from_text("").is_err());
        assert!(Trace::from_text("notatrace policy=x").is_err());
        assert!(Trace::from_text("trace policy=x bogus=1").is_err());
        assert!(Trace::from_text("trace secret=abc").is_err());
    }

    #[test]
    fn symbols_expand_batches_per_page() {
        let trace = Trace::new("baseline", "kv", 0, 0, sample_events());
        // fault=1, fetch of 2 pages=2, untrusted access=1.
        assert_eq!(trace.symbols().len(), 4);
        let unique: std::collections::HashSet<u64> = trace.symbols().into_iter().collect();
        assert_eq!(unique.len(), 4, "distinct things map to distinct symbols");
    }

    #[test]
    fn histogram_counts_repeats() {
        let mut events = sample_events();
        events.extend(sample_events());
        let trace = Trace::new("baseline", "kv", 0, 0, events);
        assert!(trace.page_histogram().values().all(|&c| c == 2));
    }
}
