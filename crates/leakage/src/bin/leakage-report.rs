//! The CI leakage gate: run the audit matrix, print the markdown
//! summary, write the JSON artifact, exit non-zero on gate failure.
//!
//! ```text
//! leakage-report [--seeds N] [--out report.json] [--markdown report.md]
//! ```

use std::process::ExitCode;

use autarky_leakage::audit::run_audit_filtered;
use autarky_leakage::AuditConfig;

fn main() -> ExitCode {
    let mut config = AuditConfig::default();
    let mut json_out: Option<String> = None;
    let mut markdown_out: Option<String> = None;
    let mut only: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--seeds" => {
                config.seeds = value("--seeds")
                    .parse()
                    .unwrap_or_else(|_| die("--seeds needs an integer ≥ 2"));
                if config.seeds < 2 {
                    die("--seeds needs an integer ≥ 2");
                }
            }
            "--out" => json_out = Some(value("--out")),
            "--markdown" => markdown_out = Some(value("--markdown")),
            "--only" => only.push(value("--only")),
            "--help" | "-h" => {
                println!(
                    "usage: leakage-report [--seeds N] [--out report.json] \
                     [--markdown report.md] [--only policy/workload]..."
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let report = run_audit_filtered(&config, &only);
    let markdown = report.to_markdown();
    print!("{markdown}");

    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = markdown_out {
        if let Err(e) = std::fs::write(&path, &markdown) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if report.pass {
        ExitCode::SUCCESS
    } else {
        eprintln!("leakage audit FAILED: a gate threshold was violated");
        ExitCode::FAILURE
    }
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
