//! Bracketed capture of the adversary's view of one workload phase.
//!
//! Two cursors are taken at `begin`: one into the OS observation stream
//! (via the non-draining [`Os::observation_mark`] API, so attack oracles
//! and tests sharing the stream keep working) and one into the ORAM
//! bucket log (ORAM heap traffic deliberately bypasses the kernel — the
//! runtime reads untrusted memory directly — yet it *is*
//! adversary-visible, so the audit folds it back in as
//! [`Observation::UntrustedAccess`] events).

use autarky_os_sim::{Observation, Os};
use autarky_workloads::EncHeap;

/// An open capture bracket.
#[derive(Debug, Clone, Copy)]
pub struct Capture {
    mark: u64,
    oram_mark: usize,
}

impl Capture {
    /// Start capturing: record cursors into both adversary channels.
    pub fn begin(os: &Os, heap: &EncHeap) -> Self {
        Self {
            mark: os.observation_mark(),
            oram_mark: heap.oram_access_log().len(),
        }
    }

    /// Close the bracket: everything the adversary observed since
    /// [`Capture::begin`], kernel events first, then ORAM bucket traffic
    /// (bucket index as the access key).
    pub fn finish(self, os: &Os, heap: &EncHeap) -> Vec<Observation> {
        let mut events: Vec<Observation> = os.observations_since(self.mark).to_vec();
        events.extend(
            heap.oram_access_log()[self.oram_mark..]
                .iter()
                .map(|&(bucket, write)| Observation::UntrustedAccess {
                    key: bucket as u64,
                    write,
                }),
        );
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky::{Profile, SystemBuilder};

    #[test]
    fn brackets_only_the_phase() {
        let (mut world, mut heap) = SystemBuilder::new("cap-test", Profile::Unprotected)
            .epc_pages(1024)
            .heap_pages(128)
            .build()
            .expect("build");
        let ptr = heap.alloc(&mut world, 4096).expect("alloc");
        let before = world.os.observations().len();
        let capture = Capture::begin(&world.os, &heap);
        heap.write(&mut world, ptr, &[1u8; 4096]).expect("write");
        let events = capture.finish(&world.os, &heap);
        // Nothing from before the bracket leaks in.
        assert!(world.os.observations().len() >= before + events.len());
        let replay = capture.finish(&world.os, &heap);
        assert_eq!(replay, events, "finish is non-draining and repeatable");
    }

    #[test]
    fn oram_bucket_traffic_is_folded_in() {
        let (mut world, mut heap) = SystemBuilder::new(
            "cap-oram",
            Profile::CachedOram {
                capacity_pages: 64,
                cache_pages: 4,
            },
        )
        .epc_pages(1024)
        .heap_pages(128)
        .build()
        .expect("build");
        // Allocate more than the cache so accesses spill to the ORAM.
        let ptr = heap.alloc(&mut world, 8 * 4096).expect("alloc");
        let capture = Capture::begin(&world.os, &heap);
        for page in 0..8u64 {
            heap.write_u64(&mut world, ptr.offset(page * 4096), page)
                .expect("write");
        }
        let events = capture.finish(&world.os, &heap);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Observation::UntrustedAccess { .. })),
            "ORAM bucket traffic appears in the captured view"
        );
    }
}
