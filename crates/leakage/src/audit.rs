//! The leakage audit harness: paired secret runs across the policy ×
//! workload matrix, distinguishability per cell, and the CI gates.
//!
//! For every cell the harness runs K=2 secret classes × N seeds, captures
//! the adversary view of the secret-dependent phase only (setup —
//! loading dictionaries, populating stores — is public), and feeds the
//! traces to [`distinguishability`]. The gates encode the paper's
//! claims:
//!
//! * **baseline** (vanilla SGX + fault tracer): the adversary *must*
//!   distinguish the secrets — if it can't, the audit itself is broken
//!   (sanity gate, MI ≥ threshold);
//! * **cached-oram** (§5.2.2): bucket traffic must be independent of the
//!   secret (MI ≤ threshold);
//! * **rate-limit** (§5.2.4): observed faults must stay within the
//!   configured bound, i.e. measured bits/progress ≤ the ε budget;
//! * **clusters** (§5.2.3): informational — the report shows how much
//!   the anonymity sets coarsen the channel, but cluster sizing is a
//!   policy choice, not a pass/fail;
//! * **restore** (sealed checkpoint/restore): the secret phase is
//!   interrupted by a snapshot → host crash → failover-restore cycle,
//!   and the audit isolates what that cycle itself hands the OS — the
//!   sealed blob's transport chunks. The chunk sequence must be
//!   independent of the secret (MI ≤ threshold): this is the size
//!   channel the snapshot payload padding exists to close.
//! * **fleet** (multi-tenant EPC): two enclaves share one machine's
//!   EPC; the *secret tenant* processes the cell workload's secret
//!   phase while a neighbor serves a fixed public request sequence.
//!   The adversary view is every kernel event attributable to the
//!   *neighbor* — the gate asks whether the co-tenant's secret
//!   modulates the neighbor's paging trace through the shared machine
//!   (MI ≤ threshold), i.e. whether self-paging budgets actually
//!   isolate tenants from each other's access patterns.

use autarky::{Profile, SystemBuilder};
use autarky_os_sim::{EnclaveImage, Observation, Os};
use autarky_runtime::{is_telemetry_export_key, RateLimit, RuntimeConfig};
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::{EnclaveId, MonotonicCounter};
use autarky_workloads::{font, jpeg, kvstore, spell, EncHeap, EnclaveHandle, World};

use crate::capture::Capture;
use crate::metrics::{distinguishability, Distinguishability};
use crate::trace::Trace;

/// Audit parameters and gate thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditConfig {
    /// Seeds (runs) per secret class per cell; ≥ 2.
    pub seeds: usize,
    /// The baseline sanity gate: minimum MI (bits/run) the unprotected
    /// configuration must leak.
    pub baseline_min_mi: f64,
    /// The ORAM gate: maximum MI (bits/run) the cached-ORAM
    /// configuration may leak.
    pub oram_max_mi: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            seeds: 3,
            baseline_min_mi: 0.9,
            oram_max_mi: 0.25,
        }
    }
}

/// The audited protection policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    Baseline,
    RateLimit,
    Clusters,
    CachedOram,
    /// Self-paging with periodic sealed telemetry exports; the audit
    /// isolates the export channel and gates its distinguishability.
    Telemetry,
    /// Self-paging with a mid-phase sealed snapshot → crash → failover
    /// restore; the audit isolates the snapshot transport channel and
    /// gates its distinguishability.
    Restore,
    /// Two self-paging tenants on one shared EPC; the audit isolates
    /// the *neighbor's* trace and gates whether the co-tenant's secret
    /// bleeds into it.
    Fleet,
}

impl Policy {
    const ALL: [Policy; 7] = [
        Policy::Baseline,
        Policy::RateLimit,
        Policy::Clusters,
        Policy::CachedOram,
        Policy::Telemetry,
        Policy::Restore,
        Policy::Fleet,
    ];

    fn name(self) -> &'static str {
        match self {
            Policy::Baseline => "baseline",
            Policy::RateLimit => "rate-limit",
            Policy::Clusters => "clusters",
            Policy::CachedOram => "cached-oram",
            Policy::Telemetry => "telemetry",
            Policy::Restore => "restore",
            Policy::Fleet => "fleet",
        }
    }
}

/// The audited workloads (the paper's Table 2 attack victims plus the
/// Figure 8 store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Jpeg,
    Font,
    Spell,
    Kvstore,
}

impl Workload {
    const ALL: [Workload; 4] = [
        Workload::Jpeg,
        Workload::Font,
        Workload::Spell,
        Workload::Kvstore,
    ];

    fn name(self) -> &'static str {
        match self {
            Workload::Jpeg => "jpeg",
            Workload::Font => "font",
            Workload::Spell => "spell",
            Workload::Kvstore => "kvstore",
        }
    }
}

/// Per-run bookkeeping the rate gate needs.
#[derive(Debug, Clone, Copy, Default)]
struct RunStats {
    faults: u64,
    progress: u64,
    tracked_pages: usize,
    rate_limit: Option<RateLimit>,
    terminated: bool,
}

/// The rate-limit gate evidence for one cell (worst run shown).
#[derive(Debug, Clone, PartialEq)]
pub struct RateGate {
    /// Faults the runtime handled in the worst run.
    pub faults: u64,
    /// Forward progress in that run.
    pub progress: u64,
    /// Faults the policy would have tolerated at that progress.
    pub allowed: f64,
    /// Measured leakage rate: post-burst faults × log2(tracked pages) /
    /// progress, in bits per unit of progress.
    pub measured_bits_per_progress: f64,
    /// The configured ε budget in bits per unit of progress.
    pub budget_bits_per_progress: f64,
}

/// Gate outcome for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Threshold held.
    Pass,
    /// Threshold violated (fails the audit).
    Fail,
    /// No threshold applies to this cell.
    Info,
}

/// One (policy × workload) cell of the audit matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Policy label.
    pub policy: &'static str,
    /// Workload label.
    pub workload: &'static str,
    /// Distinguishability summary over the captured traces.
    pub dist: Distinguishability,
    /// Rate-limit evidence (rate-limit cells only).
    pub rate: Option<RateGate>,
    /// Gate outcome.
    pub gate: Gate,
    /// Human-readable gate explanation.
    pub reason: String,
}

/// The full audit result.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Seeds per class the audit ran with.
    pub seeds: usize,
    /// All cells, policy-major order.
    pub cells: Vec<CellResult>,
    /// Conjunction of every gated cell.
    pub pass: bool,
}

/// Stable policy labels of the audit matrix, in report order (the
/// vocabulary external matrix drivers select cells by).
pub fn policy_names() -> [&'static str; 7] {
    Policy::ALL.map(Policy::name)
}

/// Stable workload labels of the audit matrix, in report order.
pub fn workload_names() -> [&'static str; 4] {
    Workload::ALL.map(Workload::name)
}

/// Run the full audit matrix.
pub fn run_audit(config: &AuditConfig) -> AuditReport {
    run_audit_filtered(config, &[])
}

/// Run a subset of the matrix: `only` holds `policy/workload` labels
/// (e.g. `cached-oram/spell`); empty runs everything.
pub fn run_audit_filtered(config: &AuditConfig, only: &[String]) -> AuditReport {
    assert!(config.seeds >= 2, "need ≥2 seeds per class");
    let mut cells = Vec::new();
    for policy in Policy::ALL {
        for workload in Workload::ALL {
            let label = format!("{}/{}", policy.name(), workload.name());
            if only.is_empty() || only.iter().any(|o| o == &label) {
                cells.push(audit_cell(config, policy, workload));
            }
        }
    }
    let pass = cells.iter().all(|c| c.gate != Gate::Fail);
    AuditReport {
        seeds: config.seeds,
        cells,
        pass,
    }
}

fn audit_cell(config: &AuditConfig, policy: Policy, workload: Workload) -> CellResult {
    let mut classes: [Vec<Vec<u64>>; 2] = [Vec::new(), Vec::new()];
    let mut worst_rate: Option<RateGate> = None;
    for secret in 0..2u32 {
        for seed in 0..config.seeds as u64 {
            let (trace, stats) = run_one(policy, workload, secret, seed);
            assert!(
                !stats.terminated,
                "{}/{} secret {secret} seed {seed}: enclave terminated under audit load",
                policy.name(),
                workload.name()
            );
            classes[secret as usize].push(trace.symbols());
            if let Some(limit) = stats.rate_limit {
                let gate = rate_gate(&stats, limit);
                let is_worse = worst_rate
                    .as_ref()
                    .map(|w| gate.measured_bits_per_progress > w.measured_bits_per_progress)
                    .unwrap_or(true);
                if is_worse {
                    worst_rate = Some(gate);
                }
            }
        }
    }
    let dist = distinguishability(&classes[0], &classes[1]);

    let (gate, reason) = match policy {
        Policy::Baseline => {
            if dist.mi_bits >= config.baseline_min_mi {
                (
                    Gate::Pass,
                    format!(
                        "sanity: baseline leaks {:.2} ≥ {:.2} bits/run",
                        dist.mi_bits, config.baseline_min_mi
                    ),
                )
            } else {
                (
                    Gate::Fail,
                    format!(
                        "audit broken: baseline leaks only {:.2} < {:.2} bits/run",
                        dist.mi_bits, config.baseline_min_mi
                    ),
                )
            }
        }
        Policy::CachedOram => {
            if dist.mi_bits <= config.oram_max_mi {
                (
                    Gate::Pass,
                    format!(
                        "ORAM indistinguishable: {:.2} ≤ {:.2} bits/run",
                        dist.mi_bits, config.oram_max_mi
                    ),
                )
            } else {
                (
                    Gate::Fail,
                    format!(
                        "ORAM leaks {:.2} > {:.2} bits/run",
                        dist.mi_bits, config.oram_max_mi
                    ),
                )
            }
        }
        Policy::RateLimit => match &worst_rate {
            Some(rate) if (rate.faults as f64) <= rate.allowed => (
                Gate::Pass,
                format!(
                    "within budget: {:.3} ≤ {:.3} bits/progress ({} faults / {} progress)",
                    rate.measured_bits_per_progress,
                    rate.budget_bits_per_progress,
                    rate.faults,
                    rate.progress
                ),
            ),
            Some(rate) => (
                Gate::Fail,
                format!(
                    "over budget: {} faults > {:.1} allowed at progress {}",
                    rate.faults, rate.allowed, rate.progress
                ),
            ),
            None => (Gate::Fail, "rate-limit run recorded no policy".to_owned()),
        },
        Policy::Clusters => (
            Gate::Info,
            format!(
                "anonymity sets: cross-class TV {:.2}, MI {:.2} bits/run",
                dist.mean_cross_tv, dist.mi_bits
            ),
        ),
        Policy::Telemetry => {
            if dist.mean_symbols[0] == 0.0 && dist.mean_symbols[1] == 0.0 {
                (
                    Gate::Fail,
                    "telemetry cell captured no export traffic".to_owned(),
                )
            } else if dist.mi_bits <= config.oram_max_mi {
                (
                    Gate::Pass,
                    format!(
                        "telemetry export indistinguishable: {:.2} ≤ {:.2} bits/run",
                        dist.mi_bits, config.oram_max_mi
                    ),
                )
            } else {
                (
                    Gate::Fail,
                    format!(
                        "telemetry export leaks {:.2} > {:.2} bits/run",
                        dist.mi_bits, config.oram_max_mi
                    ),
                )
            }
        }
        Policy::Restore => {
            if dist.mean_symbols[0] == 0.0 && dist.mean_symbols[1] == 0.0 {
                (
                    Gate::Fail,
                    "restore cell captured no snapshot transport".to_owned(),
                )
            } else if dist.mi_bits <= config.oram_max_mi {
                (
                    Gate::Pass,
                    format!(
                        "sealed snapshot transport indistinguishable: {:.2} ≤ {:.2} bits/run",
                        dist.mi_bits, config.oram_max_mi
                    ),
                )
            } else {
                (
                    Gate::Fail,
                    format!(
                        "sealed snapshot transport leaks {:.2} > {:.2} bits/run \
                         (blob size channel open?)",
                        dist.mi_bits, config.oram_max_mi
                    ),
                )
            }
        }
        Policy::Fleet => {
            if dist.mean_symbols[0] == 0.0 && dist.mean_symbols[1] == 0.0 {
                (
                    Gate::Fail,
                    "fleet cell captured no neighbor traffic".to_owned(),
                )
            } else if dist.mi_bits <= config.oram_max_mi {
                (
                    Gate::Pass,
                    format!(
                        "cross-tenant isolation holds: neighbor trace leaks \
                         {:.2} ≤ {:.2} bits/run",
                        dist.mi_bits, config.oram_max_mi
                    ),
                )
            } else {
                (
                    Gate::Fail,
                    format!(
                        "neighbor trace leaks {:.2} > {:.2} bits/run of the \
                         co-tenant's secret",
                        dist.mi_bits, config.oram_max_mi
                    ),
                )
            }
        }
    };

    CellResult {
        policy: policy.name(),
        workload: workload.name(),
        dist,
        rate: worst_rate,
        gate,
        reason,
    }
}

fn rate_gate(stats: &RunStats, limit: RateLimit) -> RateGate {
    let bits_per_fault = (stats.tracked_pages.max(2) as f64).log2();
    let billable = stats.faults.saturating_sub(limit.burst) as f64;
    let measured = if stats.progress == 0 {
        // No progress: only the burst allowance applies; any billable
        // fault is an infinite rate. Surface it as such.
        if billable > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        billable * bits_per_fault / stats.progress as f64
    };
    RateGate {
        faults: stats.faults,
        progress: stats.progress,
        allowed: limit.allowed_faults(stats.progress),
        measured_bits_per_progress: measured,
        budget_bits_per_progress: limit.budget_bits_per_progress(stats.tracked_pages),
    }
}

// ----------------------------------------------------------------------
// Per-run execution.
// ----------------------------------------------------------------------

/// Self-paging resident budget: small enough that every audited workload
/// pages under pressure (so the residual channel actually carries
/// traffic), large enough that no single operation starves.
const BUDGET_PAGES: usize = 48;

/// Build the world for one audited run. Only the ORAM profile consumes
/// the seed (position-map randomness); deterministic profiles produce
/// identical traces across seeds, which the analysis handles (zero
/// within-class variance).
fn build_world(policy: Policy, seed: u64) -> (World, EncHeap) {
    let (profile, budget) = match policy {
        Policy::Baseline => (Profile::Unprotected, 0),
        Policy::RateLimit => (
            Profile::RateLimited {
                max_faults_per_progress: 64.0,
                burst: 4096,
            },
            BUDGET_PAGES,
        ),
        Policy::Clusters => (
            Profile::Clusters {
                pages_per_cluster: 10,
            },
            BUDGET_PAGES,
        ),
        Policy::CachedOram => (
            Profile::CachedOram {
                capacity_pages: 512,
                cache_pages: 24,
            },
            0,
        ),
        // The telemetry and restore cells run ordinary self-paging; what
        // they audit is the traffic layered on top (exports, snapshot
        // transport).
        Policy::Telemetry | Policy::Restore => (
            Profile::Clusters {
                pages_per_cluster: 10,
            },
            BUDGET_PAGES,
        ),
        // The fleet cell's observed neighbor: ordinary self-paging whose
        // fixed working set (sized in `run_fleet_cell`) exceeds this
        // budget, so the neighbor pages continuously — an empty neighbor
        // trace would make the isolation gate vacuous.
        Policy::Fleet => (
            Profile::Clusters {
                pages_per_cluster: 10,
            },
            BUDGET_PAGES,
        ),
    };
    let (world, heap) = SystemBuilder::new("leakage-audit", profile)
        .epc_pages(4096)
        .heap_pages(1024)
        .code_pages(24)
        .budget_pages(budget)
        .seed(0xA0D1_7000 + seed * 7919)
        .build()
        .expect("audit world builds");
    (world, heap)
}

/// Arm the legacy fault-tracing attacker for the baseline runs: unmap
/// the given pages so every first touch (and every page transition)
/// faults with an unmasked address. Targets are armed at full density —
/// the tracer resolves accesses that straddle two adjacent armed pages
/// itself (see `Os::arm_fault_tracer`), so data and code ranges alike
/// need no stride games.
fn arm_baseline(world: &mut World, pages: impl Iterator<Item = autarky_sgx_sim::Vpn>) {
    world
        .os
        .arm_fault_tracer(world.eid, pages)
        .expect("tracer arms");
}

/// Snapshot the enclave, crash the host, and restore on a failover host
/// mid-phase (the audit analogue of the flight recorder's crash hook).
/// Returns the adversary's view of the cycle: one [`UntrustedAccess`]
/// event per page-sized chunk of the sealed blob the OS transported.
/// The happy path must succeed — a failure here is a harness bug, not a
/// leakage finding.
///
/// [`UntrustedAccess`]: autarky_os_sim::Observation::UntrustedAccess
fn crash_and_restore(world: &mut World) -> Vec<autarky_os_sim::Observation> {
    let mut counter = MonotonicCounter::new(world.os.machine.platform_key(), world.eid);
    let blob =
        autarky_snapshot::snapshot(&world.os, &world.rt, &mut counter).expect("mid-audit snapshot");
    let mut host = Os::new(MachineConfig::default());
    host.adopt_untrusted_state(&mut world.os, world.eid)
        .expect("failover host adopts OS-side state");
    world.os = host;
    world.rt =
        autarky_snapshot::restore(&mut world.os, &mut counter, &blob).expect("failover restore");
    (0..autarky_snapshot::transport_chunks(blob.len()))
        .map(|chunk| autarky_os_sim::Observation::UntrustedAccess {
            key: autarky_snapshot::snapshot_transport_key(chunk),
            write: true,
        })
        .collect()
}

fn run_one(policy: Policy, workload: Workload, secret: u32, seed: u64) -> (Trace, RunStats) {
    if policy == Policy::Fleet {
        return run_fleet_cell(workload, secret, seed);
    }
    let (mut world, mut heap) = build_world(policy, seed);
    let mut events = match workload {
        Workload::Jpeg => run_jpeg(policy, secret, &mut world, &mut heap),
        Workload::Font => run_font(policy, secret, &mut world, &mut heap),
        Workload::Spell => run_spell(policy, secret, &mut world, &mut heap),
        Workload::Kvstore => run_kvstore(policy, secret, &mut world, &mut heap),
    };
    if policy == Policy::Telemetry {
        // The telemetry cell isolates the export channel: paging traffic
        // is already audited by the other cells, so the adversary view
        // here is exactly the sealed-snapshot writes.
        events.retain(|ev| {
            matches!(ev, autarky_os_sim::Observation::UntrustedAccess { key, .. }
                if is_telemetry_export_key(*key))
        });
    }
    if policy == Policy::Restore {
        // Likewise the restore cell isolates the snapshot transport:
        // the paging traffic around it is the clusters cell's job.
        events.retain(|ev| {
            matches!(ev, autarky_os_sim::Observation::UntrustedAccess { key, .. }
                if autarky_snapshot::is_snapshot_transport_key(*key))
        });
    }
    let meta = world.rt.policy_meta();
    let stats = RunStats {
        faults: world.rt.fault_count(),
        progress: world.rt.progress_total(),
        tracked_pages: meta.tracked_pages,
        rate_limit: meta.rate_limit,
        terminated: world.rt.is_terminated(),
    };
    let trace = Trace::new(policy.name(), workload.name(), secret, seed, events);
    (trace, stats)
}

fn run_jpeg(
    policy: Policy,
    secret: u32,
    world: &mut World,
    heap: &mut EncHeap,
) -> Vec<autarky_os_sim::Observation> {
    const SIDE: usize = 32;
    let (img_a, img_b) = jpeg::secret_pair(SIDE);
    let image = if secret == 0 { img_a } else { img_b };
    let compressed = jpeg::encode(SIDE, SIDE, &image);
    let mut decoder = jpeg::Decoder::new(world, heap, SIDE, SIDE).expect("decoder");
    if policy == Policy::Baseline {
        // Code fetches touch one page per exec, so adjacent targets are
        // safe here.
        let pages: Vec<_> = world.image.code_range().collect();
        arm_baseline(world, pages.into_iter());
    }
    let capture = Capture::begin(&world.os, heap);
    decoder.decode(world, heap, &compressed).expect("decode");
    if policy == Policy::Telemetry {
        world.rt.export_epoch(&mut world.os).expect("export");
    }
    // Snapshot after the decode so the checkpoint holds the maximally
    // secret-dependent resident set.
    let transport = if policy == Policy::Restore {
        crash_and_restore(world)
    } else {
        Vec::new()
    };
    let mut events = capture.finish(&world.os, heap);
    events.extend(transport);
    events
}

fn run_font(
    policy: Policy,
    secret: u32,
    world: &mut World,
    heap: &mut EncHeap,
) -> Vec<autarky_os_sim::Observation> {
    const LEN: usize = 16;
    let (text_a, text_b) = font::secret_pair(LEN);
    let text = if secret == 0 { text_a } else { text_b };
    let mut renderer = font::FontRenderer::new(world, heap, LEN).expect("renderer");
    if policy == Policy::Baseline {
        let pages: Vec<_> = world.image.code_range().collect();
        arm_baseline(world, pages.into_iter());
    }
    let capture = Capture::begin(&world.os, heap);
    renderer.render_text(world, heap, &text).expect("render");
    if policy == Policy::Telemetry {
        world.rt.export_epoch(&mut world.os).expect("export");
    }
    let transport = if policy == Policy::Restore {
        crash_and_restore(world)
    } else {
        Vec::new()
    };
    let mut events = capture.finish(&world.os, heap);
    events.extend(transport);
    events
}

fn run_spell(
    policy: Policy,
    secret: u32,
    world: &mut World,
    heap: &mut EncHeap,
) -> Vec<autarky_os_sim::Observation> {
    const DICT_WORDS: usize = 300;
    const QUERY_WORDS: usize = 24;
    let dictionary = spell::Dictionary::load(world, heap, "en", DICT_WORDS).expect("dict");
    let (text_a, text_b) = spell::secret_pair("en", DICT_WORDS, QUERY_WORDS);
    let text = if secret == 0 { text_a } else { text_b };
    if policy == Policy::Baseline {
        arm_baseline(world, dictionary.pages.iter().copied());
    }
    let capture = Capture::begin(&world.os, heap);
    let mut transport = Vec::new();
    for (i, word) in text.iter().enumerate() {
        dictionary.check(world, heap, word).expect("check");
        if policy == Policy::Telemetry && (i + 1) % 8 == 0 {
            world.rt.export_epoch(&mut world.os).expect("export");
        }
        // Crash mid-phase: the checkpoint's resident set reflects the
        // secret-dependent queries processed so far.
        if policy == Policy::Restore && i + 1 == QUERY_WORDS / 2 {
            transport = crash_and_restore(world);
        }
    }
    let mut events = capture.finish(&world.os, heap);
    events.extend(transport);
    events
}

fn run_kvstore(
    policy: Policy,
    secret: u32,
    world: &mut World,
    heap: &mut EncHeap,
) -> Vec<autarky_os_sim::Observation> {
    const ITEMS: u64 = 128;
    const VALUE_SIZE: usize = 512;
    const GETS: usize = 48;
    let mut store = kvstore::KvStore::new(
        world,
        heap,
        ITEMS,
        VALUE_SIZE,
        kvstore::ItemClustering::None,
    )
    .expect("store");
    store.load(world, heap, ITEMS).expect("load");
    let (keys_a, keys_b) = kvstore::secret_pair(ITEMS, GETS);
    let keys = if secret == 0 { keys_a } else { keys_b };
    if policy == Policy::Baseline {
        let pages: Vec<_> = world.image.heap_range().collect();
        arm_baseline(world, pages.into_iter());
    }
    let capture = Capture::begin(&world.os, heap);
    let mut transport = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        store.get(world, heap, key).expect("get").expect("present");
        if policy == Policy::Telemetry && (i + 1) % 16 == 0 {
            world.rt.export_epoch(&mut world.os).expect("export");
        }
        if policy == Policy::Restore && i + 1 == GETS / 2 {
            transport = crash_and_restore(world);
        }
    }
    let mut events = capture.finish(&world.os, heap);
    events.extend(transport);
    events
}

// ----------------------------------------------------------------------
// The fleet cell: two tenants on one shared EPC.
// ----------------------------------------------------------------------

/// Fleet-cell sizing for the observed neighbor: 128 items at two per
/// page is a 64-page value working set, deliberately wider than
/// [`BUDGET_PAGES`] so the neighbor's public trace always carries
/// paging traffic.
const FLEET_NEIGHBOR_ITEMS: u64 = 128;
const FLEET_NEIGHBOR_VALUE: usize = 2048;

/// The enclave an observation is attributable to, if any (untrusted
/// buffer accesses carry no enclave identity).
fn observation_eid(ev: &Observation) -> Option<EnclaveId> {
    match ev {
        Observation::Fault { eid, .. }
        | Observation::FetchSyscall { eid, .. }
        | Observation::EvictSyscall { eid, .. }
        | Observation::AllocSyscall { eid, .. }
        | Observation::SetEnclaveManaged { eid, .. }
        | Observation::SetOsManaged { eid, .. }
        | Observation::DemandPaging { eid, .. }
        | Observation::AdBitObserved { eid, .. }
        | Observation::FaultInjected { eid, .. } => Some(*eid),
        Observation::UntrustedAccess { .. } => None,
    }
}

/// Serve four fixed public GETs on the neighbor tenant (the enclave the
/// adversary watches), then hand the shared host back. The stride walk
/// is deterministic and secret-independent, and wider than the paging
/// budget, so every chunk pages.
fn fleet_neighbor_chunk(
    os: Os,
    handle: EnclaveHandle,
    heap: &mut EncHeap,
    store: &mut kvstore::KvStore,
    cursor: &mut u64,
) -> (Os, EnclaveHandle) {
    let mut world = World::join(os, handle);
    for _ in 0..4 {
        let key = cursor.wrapping_mul(29) % FLEET_NEIGHBOR_ITEMS;
        *cursor += 1;
        store
            .get(&mut world, heap, key)
            .expect("neighbor get")
            .expect("neighbor key present");
    }
    world.split()
}

/// One run of the fleet cell: tenant B processes the cell workload's
/// secret phase while neighbor A serves fixed public kvstore GETs,
/// interleaved so both tenants page against the shared EPC at once.
/// The trace keeps only events attributable to A — what an adversary
/// colocated with the *neighbor* learns about B's secret.
fn run_fleet_cell(workload: Workload, secret: u32, seed: u64) -> (Trace, RunStats) {
    // Neighbor A (the observed tenant) comes up through the ordinary
    // builder path; its profile and budget live in `build_world`.
    let (world_a, mut heap_a) = build_world(Policy::Fleet, seed);
    let eid_a = world_a.eid;
    let (os, handle_a) = world_a.split();
    let mut world = World::join(os, handle_a);
    let mut store_a = kvstore::KvStore::new(
        &mut world,
        &mut heap_a,
        FLEET_NEIGHBOR_ITEMS,
        FLEET_NEIGHBOR_VALUE,
        kvstore::ItemClustering::None,
    )
    .expect("neighbor store");
    store_a
        .load(&mut world, &mut heap_a, FLEET_NEIGHBOR_ITEMS)
        .expect("neighbor load");
    let (mut os, handle_a) = world.split();

    // Tenant B (the secret tenant) attaches to the same host, sharing
    // its EPC. Everything before the mark — including B's workload
    // setup below, which is secret-independent — is public; the
    // A-filtered capture only sees what A does afterwards anyway.
    let mut image = EnclaveImage::named("fleet-secret-tenant");
    image.heap_pages = 1024;
    let handle_b = World::attach_to(
        &mut os,
        image,
        RuntimeConfig {
            budget: BUDGET_PAGES,
            ..Default::default()
        },
    )
    .expect("secret tenant attaches");
    let mut heap_b = EncHeap::direct();
    let mut cursor = 0u64;
    let mark = os.observation_mark();

    let (os, handle_a, handle_b) = match workload {
        Workload::Jpeg => {
            const SIDE: usize = 32;
            let (img0, img1) = jpeg::secret_pair(SIDE);
            let px = if secret == 0 { img0 } else { img1 };
            let compressed = jpeg::encode(SIDE, SIDE, &px);
            let mut wb = World::join(os, handle_b);
            let mut decoder =
                jpeg::Decoder::new(&mut wb, &mut heap_b, SIDE, SIDE).expect("decoder");
            let (os, hb) = wb.split();
            let (os, ha) =
                fleet_neighbor_chunk(os, handle_a, &mut heap_a, &mut store_a, &mut cursor);
            let mut wb = World::join(os, hb);
            decoder
                .decode(&mut wb, &mut heap_b, &compressed)
                .expect("decode");
            let (os, hb) = wb.split();
            let (os, ha) = fleet_neighbor_chunk(os, ha, &mut heap_a, &mut store_a, &mut cursor);
            (os, ha, hb)
        }
        Workload::Font => {
            const LEN: usize = 16;
            let (t0, t1) = font::secret_pair(LEN);
            let text = if secret == 0 { t0 } else { t1 };
            let mut wb = World::join(os, handle_b);
            let mut renderer =
                font::FontRenderer::new(&mut wb, &mut heap_b, LEN).expect("renderer");
            let (os, hb) = wb.split();
            let (os, ha) =
                fleet_neighbor_chunk(os, handle_a, &mut heap_a, &mut store_a, &mut cursor);
            let mut wb = World::join(os, hb);
            renderer
                .render_text(&mut wb, &mut heap_b, &text)
                .expect("render");
            let (os, hb) = wb.split();
            let (os, ha) = fleet_neighbor_chunk(os, ha, &mut heap_a, &mut store_a, &mut cursor);
            (os, ha, hb)
        }
        Workload::Spell => {
            const DICT_WORDS: usize = 300;
            const QUERY_WORDS: usize = 24;
            let mut wb = World::join(os, handle_b);
            let dict =
                spell::Dictionary::load(&mut wb, &mut heap_b, "en", DICT_WORDS).expect("dict");
            let (t0, t1) = spell::secret_pair("en", DICT_WORDS, QUERY_WORDS);
            let text = if secret == 0 { t0 } else { t1 };
            let (mut os, mut hb) = wb.split();
            let mut ha = handle_a;
            for (i, word) in text.iter().enumerate() {
                let mut wb = World::join(os, hb);
                dict.check(&mut wb, &mut heap_b, word).expect("check");
                (os, hb) = wb.split();
                if (i + 1) % 6 == 0 {
                    (os, ha) = fleet_neighbor_chunk(os, ha, &mut heap_a, &mut store_a, &mut cursor);
                }
            }
            (os, ha, hb)
        }
        Workload::Kvstore => {
            const ITEMS: u64 = 128;
            const VALUE_SIZE: usize = 512;
            const GETS: usize = 48;
            let mut wb = World::join(os, handle_b);
            let mut store_b = kvstore::KvStore::new(
                &mut wb,
                &mut heap_b,
                ITEMS,
                VALUE_SIZE,
                kvstore::ItemClustering::None,
            )
            .expect("secret store");
            store_b.load(&mut wb, &mut heap_b, ITEMS).expect("load");
            let (keys0, keys1) = kvstore::secret_pair(ITEMS, GETS);
            let keys = if secret == 0 { keys0 } else { keys1 };
            let (mut os, mut hb) = wb.split();
            let mut ha = handle_a;
            for (i, &key) in keys.iter().enumerate() {
                let mut wb = World::join(os, hb);
                store_b
                    .get(&mut wb, &mut heap_b, key)
                    .expect("get")
                    .expect("present");
                (os, hb) = wb.split();
                if (i + 1) % 12 == 0 {
                    (os, ha) = fleet_neighbor_chunk(os, ha, &mut heap_a, &mut store_a, &mut cursor);
                }
            }
            (os, ha, hb)
        }
    };

    let events: Vec<Observation> = os
        .observations_since(mark)
        .iter()
        .filter(|ev| observation_eid(ev) == Some(eid_a))
        .cloned()
        .collect();
    let meta = handle_a.rt.policy_meta();
    let stats = RunStats {
        faults: handle_a.rt.fault_count(),
        progress: handle_a.rt.progress_total(),
        tracked_pages: meta.tracked_pages,
        rate_limit: meta.rate_limit,
        terminated: handle_a.rt.is_terminated() || handle_b.rt.is_terminated(),
    };
    let trace = Trace::new("fleet", workload.name(), secret, seed, events);
    (trace, stats)
}

// ----------------------------------------------------------------------
// Report rendering (hand-rolled JSON/markdown; no external deps in the
// offline build).
// ----------------------------------------------------------------------

impl AuditReport {
    /// Serialize the report as JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"seeds\": {},\n", self.seeds));
        out.push_str(&format!("  \"pass\": {},\n", self.pass));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"policy\": \"{}\",\n", cell.policy));
            out.push_str(&format!("      \"workload\": \"{}\",\n", cell.workload));
            out.push_str(&format!(
                "      \"gate\": \"{}\",\n",
                match cell.gate {
                    Gate::Pass => "pass",
                    Gate::Fail => "fail",
                    Gate::Info => "info",
                }
            ));
            out.push_str(&format!(
                "      \"reason\": \"{}\",\n",
                cell.reason.replace('"', "'")
            ));
            let d = &cell.dist;
            out.push_str(&format!(
                "      \"mi_bits\": {},\n      \"accuracy\": {},\n      \
                 \"mean_cross_tv\": {},\n      \"mean_within_tv\": {},\n      \
                 \"mean_cross_edit\": {},\n      \"mean_symbols\": [{}, {}]",
                json_f64(d.mi_bits),
                json_f64(d.accuracy),
                json_f64(d.mean_cross_tv),
                json_f64(d.mean_within_tv),
                json_f64(d.mean_cross_edit),
                json_f64(d.mean_symbols[0]),
                json_f64(d.mean_symbols[1]),
            ));
            if let Some(rate) = &cell.rate {
                out.push_str(&format!(
                    ",\n      \"rate\": {{\"faults\": {}, \"progress\": {}, \
                     \"allowed\": {}, \"measured_bits_per_progress\": {}, \
                     \"budget_bits_per_progress\": {}}}",
                    rate.faults,
                    rate.progress,
                    json_f64(rate.allowed),
                    json_f64(rate.measured_bits_per_progress),
                    json_f64(rate.budget_bits_per_progress),
                ));
            }
            out.push_str("\n    }");
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render the report as a markdown table plus gate lines.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Leakage audit\n\n");
        out.push_str(&format!(
            "Seeds per class: {} — overall: **{}**\n\n",
            self.seeds,
            if self.pass { "PASS" } else { "FAIL" }
        ));
        out.push_str(
            "| policy | workload | MI (bits/run) | accuracy | cross-TV | within-TV | \
             cross-edit | symbols (s0/s1) | gate |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|---|\n");
        for cell in &self.cells {
            let d = &cell.dist;
            out.push_str(&format!(
                "| {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.0}/{:.0} | {} |\n",
                cell.policy,
                cell.workload,
                d.mi_bits,
                d.accuracy,
                d.mean_cross_tv,
                d.mean_within_tv,
                d.mean_cross_edit,
                d.mean_symbols[0],
                d.mean_symbols[1],
                match cell.gate {
                    Gate::Pass => "pass",
                    Gate::Fail => "**FAIL**",
                    Gate::Info => "info",
                },
            ));
        }
        out.push('\n');
        for cell in &self.cells {
            out.push_str(&format!(
                "- `{}/{}`: {}\n",
                cell.policy, cell.workload, cell.reason
            ));
        }
        out
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        // JSON has no Infinity; encode as a large sentinel.
        "1e308".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_spell_is_distinguishable() {
        let config = AuditConfig::default();
        let cell = audit_cell(&config, Policy::Baseline, Workload::Spell);
        assert_eq!(cell.gate, Gate::Pass, "{}", cell.reason);
        assert!(cell.dist.mi_bits >= 0.9, "MI {:.3}", cell.dist.mi_bits);
        assert!(cell.dist.mean_cross_tv > 0.0);
    }

    #[test]
    fn cached_oram_kvstore_is_indistinguishable() {
        let config = AuditConfig::default();
        let cell = audit_cell(&config, Policy::CachedOram, Workload::Kvstore);
        assert_eq!(cell.gate, Gate::Pass, "{}", cell.reason);
        assert!(cell.dist.mi_bits <= 0.25, "MI {:.3}", cell.dist.mi_bits);
    }

    #[test]
    fn rate_limited_font_stays_under_budget() {
        let config = AuditConfig::default();
        let cell = audit_cell(&config, Policy::RateLimit, Workload::Font);
        assert_eq!(cell.gate, Gate::Pass, "{}", cell.reason);
        let rate = cell.rate.expect("rate evidence recorded");
        assert!((rate.faults as f64) <= rate.allowed);
    }

    #[test]
    fn telemetry_export_is_indistinguishable() {
        let config = AuditConfig::default();
        let cell = audit_cell(&config, Policy::Telemetry, Workload::Spell);
        assert_eq!(cell.gate, Gate::Pass, "{}", cell.reason);
        assert!(
            cell.dist.mean_symbols[0] > 0.0,
            "export traffic was captured"
        );
        assert!(cell.dist.mi_bits <= 0.25, "MI {:.3}", cell.dist.mi_bits);
    }

    #[test]
    fn restore_transport_is_indistinguishable() {
        let config = AuditConfig::default();
        for workload in [Workload::Spell, Workload::Kvstore] {
            let cell = audit_cell(&config, Policy::Restore, workload);
            assert_eq!(
                cell.gate,
                Gate::Pass,
                "{}: {}",
                workload.name(),
                cell.reason
            );
            assert!(
                cell.dist.mean_symbols[0] > 0.0,
                "{}: snapshot transport was captured",
                workload.name()
            );
            assert!(
                cell.dist.mi_bits <= 0.25,
                "{}: MI {:.3}",
                workload.name(),
                cell.dist.mi_bits
            );
        }
    }

    #[test]
    fn fleet_neighbor_trace_is_secret_independent() {
        let config = AuditConfig::default();
        for workload in [Workload::Kvstore, Workload::Spell] {
            let cell = audit_cell(&config, Policy::Fleet, workload);
            assert_eq!(
                cell.gate,
                Gate::Pass,
                "{}: {}",
                workload.name(),
                cell.reason
            );
            assert!(
                cell.dist.mean_symbols[0] > 0.0,
                "{}: neighbor traffic was captured",
                workload.name()
            );
            assert!(
                cell.dist.mi_bits <= 0.25,
                "{}: MI {:.3}",
                workload.name(),
                cell.dist.mi_bits
            );
        }
    }

    #[test]
    fn report_renders_json_and_markdown() {
        let report = AuditReport {
            seeds: 2,
            cells: vec![CellResult {
                policy: "baseline",
                workload: "jpeg",
                dist: Distinguishability {
                    mean_within_tv: 0.0,
                    mean_cross_tv: 0.5,
                    accuracy: 1.0,
                    mi_bits: 1.0,
                    mean_cross_edit: 0.7,
                    mean_symbols: [100.0, 100.0],
                },
                rate: None,
                gate: Gate::Pass,
                reason: "sanity".to_owned(),
            }],
            pass: true,
        };
        let json = report.to_json();
        assert!(json.contains("\"policy\": \"baseline\""));
        assert!(json.contains("\"pass\": true"));
        let md = report.to_markdown();
        assert!(md.contains("| baseline | jpeg |"));
        assert!(md.contains("PASS"));
    }
}
