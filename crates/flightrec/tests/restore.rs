//! Acceptance tests for checkpoint/restore determinism and rollback
//! detection: a mid-run snapshot → crash → failover-restore cycle must
//! be invisible in the artifacts, staged rollback attacks must be
//! detected and attributed, and a saturated flight ring must drop
//! deterministically.

use autarky_flightrec::{
    record_run, record_run_with_capacity, rollback_attack_run, verify_restore_replay,
    RollbackScenario, Schedule, SchedulePolicy, ScheduleWorkload,
};

#[test]
fn mid_run_restore_is_artifact_invisible() {
    // The bin covers the full matrix; here one self-paging cell and the
    // ORAM cell keep the suite fast while exercising both paging shapes.
    for schedule in [
        Schedule::quiet(SchedulePolicy::Clusters, ScheduleWorkload::Spell, 0, 1),
        Schedule::quiet(SchedulePolicy::CachedOram, ScheduleWorkload::Kvstore, 0, 1),
    ] {
        let label = format!("{}/{}", schedule.policy.name(), schedule.workload.name());
        let verdict = verify_restore_replay(&schedule);
        assert!(
            verdict.log_identical,
            "{label}: restore perturbed the flight log"
        );
        assert!(
            verdict.telemetry_identical,
            "{label}: restore perturbed telemetry"
        );
        assert!(verdict.outcome_identical, "{label}: outcomes diverged");
        assert_eq!(verdict.record.outcome, "ok", "{label}");
        assert!(verdict.divergence.is_none(), "{label}");
    }
}

#[test]
fn every_rollback_scenario_is_detected_and_attributed() {
    for (i, scenario) in RollbackScenario::ALL.into_iter().enumerate() {
        let outcome = rollback_attack_run(100 + i as u64, scenario);
        assert!(
            outcome.restore_failed,
            "{}: hostile restore succeeded",
            scenario.name()
        );
        assert!(
            outcome.attack_recorded,
            "{}: no AttackDetected verdict in the flight ring",
            scenario.name()
        );
        assert!(
            outcome.root_names_injection,
            "{}: forensics failed to attribute the verdict (error: {})",
            scenario.name(),
            outcome.error
        );
    }
}

#[test]
fn saturated_ring_drops_oldest_deterministically() {
    let schedule = Schedule::quiet(SchedulePolicy::RateLimit, ScheduleWorkload::Kvstore, 0, 1);
    let full = record_run(&schedule);
    assert_eq!(full.dropped, 0, "reference run must not wrap");

    const CAPACITY: usize = 32;
    let saturated = record_run_with_capacity(&schedule, CAPACITY);
    assert!(
        full.records.len() > CAPACITY,
        "schedule too small to saturate a {CAPACITY}-record ring"
    );
    // Overwrite-oldest: the retained window is exactly the tail of the
    // full log, and the drop count accounts for the rest.
    assert_eq!(saturated.records.len(), CAPACITY);
    assert_eq!(
        saturated.dropped,
        (full.records.len() - CAPACITY) as u64,
        "drop count mismatch"
    );
    assert_eq!(
        saturated.records,
        full.records[full.records.len() - CAPACITY..],
        "retained window is not the tail of the full log"
    );

    // And the saturated recording itself replays bit-identically.
    let again = record_run_with_capacity(&schedule, CAPACITY);
    assert_eq!(saturated.log_text, again.log_text);
    assert_eq!(saturated.telemetry_snapshot, again.telemetry_snapshot);
    assert_eq!(saturated.dropped, again.dropped);
}
