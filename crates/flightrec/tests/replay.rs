//! Acceptance tests for deterministic record/replay: for every paging
//! policy in the CI matrix, recording and replaying the same (seed,
//! fault plan, workload) coordinates must yield bit-identical flight
//! logs and telemetry snapshots, with every runtime decision in the
//! tail resolved to its provoking observation.

use autarky_flightrec::{record_run, verify_replay, Schedule};
use autarky_os_sim::flight::{causal_root_of_attack, decisions_resolved, render_timeline};
use autarky_os_sim::wire::decode_flight_log;
use autarky_os_sim::{FaultPlan, FlightEvent};

#[test]
fn replay_is_bit_identical_for_every_policy() {
    for schedule in Schedule::ci_matrix() {
        let label = format!("{}/{}", schedule.policy.name(), schedule.workload.name());
        let verdict = verify_replay(&schedule);
        assert!(verdict.log_identical, "{label}: flight logs diverged");
        assert!(
            verdict.telemetry_identical,
            "{label}: telemetry snapshots diverged"
        );
        assert!(verdict.outcome_identical, "{label}: outcomes diverged");
        assert_eq!(verdict.record.outcome, "ok", "{label}");
        assert_eq!(verdict.record.dropped, 0, "{label}: ring wrapped");
        assert!(
            !verdict.record.records.is_empty(),
            "{label}: nothing recorded"
        );
        assert!(verdict.divergence.is_none(), "{label}");
    }
}

#[test]
fn every_decision_in_the_tail_resolves_to_its_provocation() {
    for schedule in Schedule::ci_matrix() {
        let label = format!("{}/{}", schedule.policy.name(), schedule.workload.name());
        let run = record_run(&schedule);
        assert!(
            decisions_resolved(&run.records, 50),
            "{label}: unresolved decision in the last 50 events\n{}",
            render_timeline(&run.records, 50)
        );
    }
}

#[test]
fn recorded_log_roundtrips_through_the_wire_grammar() {
    let schedule = &Schedule::ci_matrix()[0];
    let run = record_run(schedule);
    let decoded = decode_flight_log(&run.log_text).expect("recorded log decodes");
    assert_eq!(decoded, run.records, "wire round trip is exact");
}

#[test]
fn recording_spans_both_trust_domains() {
    let run = record_run(&Schedule::ci_matrix()[0]);
    let mut domains = [false, false, false];
    for r in &run.records {
        match r.event.domain() {
            "hw" => domains[0] = true,
            "os" => domains[1] = true,
            "enclave" => domains[2] = true,
            other => panic!("unknown domain {other}"),
        }
    }
    assert_eq!(
        domains,
        [true, true, true],
        "log must carry hardware transitions, kernel observations, and runtime events"
    );
}

#[test]
fn hostile_replay_is_deterministic_and_names_the_injected_root() {
    // A certain spurious eviction under clusters: the runtime's next
    // touch of the evicted page faults, the handler sees a fault on a
    // page it believes resident... but self-paging treats that as a
    // legitimate refetch only when tracking was reconciled; the verdict
    // depends on the workload. Either way the *determinism* contract
    // must hold, and any attack verdict must trace back to the
    // injection.
    let schedule = Schedule {
        fault_plan: Some(FaultPlan {
            spurious_evict: 1.0,
            max_injections: Some(4),
            ..FaultPlan::quiescent(11)
        }),
        ..Schedule::ci_matrix()[0].clone()
    };
    let verdict = verify_replay(&schedule);
    assert!(verdict.log_identical, "hostile run must still replay");
    assert!(verdict.telemetry_identical);
    assert!(verdict.outcome_identical);
    let has_injection = verdict.record.records.iter().any(|r| {
        matches!(
            &r.event,
            FlightEvent::Kernel(autarky_os_sim::Observation::FaultInjected { .. })
        )
    });
    assert!(has_injection, "the plan fired at least once");
    if verdict.record.outcome.contains("attack detected") {
        let (attack, inj) =
            causal_root_of_attack(&verdict.record.records).expect("verdict has a causal root");
        assert!(matches!(attack.event, FlightEvent::AttackDetected { .. }));
        assert!(matches!(inj.event, FlightEvent::Kernel(_)));
    }
}
