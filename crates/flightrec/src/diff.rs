//! Trace-diff: find and explain the first causal divergence between two
//! wire-encoded flight logs.
//!
//! The comparison is textual (the wire encoding *is* the determinism
//! surface), but the report is causal: when the diverging line decodes
//! to a flight record, the report resolves its correlation chain on both
//! sides so the reader sees which provocation → decision sequence split,
//! not just which byte differed.

use autarky_os_sim::flight::{chain_records, CORR_NONE};
use autarky_os_sim::wire::decode_flight_record;
use autarky_os_sim::FlightRecord;

/// The first point where two flight logs disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based line index of the first differing line.
    pub index: usize,
    /// That line in the left log (`None` when the left log ended).
    pub left: Option<String>,
    /// That line in the right log (`None` when the right log ended).
    pub right: Option<String>,
}

/// First line where the two logs differ; `None` when byte-identical.
pub fn first_divergence(left: &str, right: &str) -> Option<Divergence> {
    let mut a = left.lines();
    let mut b = right.lines();
    let mut index = 0;
    loop {
        match (a.next(), b.next()) {
            (None, None) => return None,
            (l, r) if l == r => index += 1,
            (l, r) => {
                return Some(Divergence {
                    index,
                    left: l.map(str::to_owned),
                    right: r.map(str::to_owned),
                })
            }
        }
    }
}

/// Render a markdown report for a divergence: the differing lines with
/// surrounding context, plus the diverging correlation chains resolved
/// on both sides.
pub fn render_divergence(div: &Divergence, left: &str, right: &str) -> String {
    let mut out = String::from("# Flight-log divergence\n\n");
    out.push_str(&format!(
        "First divergence at line {} (0-based).\n\n",
        div.index
    ));
    for (name, line, text) in [
        ("recording", &div.left, left),
        ("replay", &div.right, right),
    ] {
        out.push_str(&format!("## {name}\n\n"));
        match line {
            Some(l) => out.push_str(&format!("Diverging line:\n\n```\n{l}\n```\n\n")),
            None => out.push_str("Log ended before this line.\n\n"),
        }
        out.push_str("Context:\n\n```\n");
        let lines: Vec<&str> = text.lines().collect();
        let lo = div.index.saturating_sub(3);
        let hi = (div.index + 4).min(lines.len());
        for (i, l) in lines.iter().enumerate().take(hi).skip(lo) {
            let marker = if i == div.index { ">" } else { " " };
            out.push_str(&format!("{marker} {i:>5} {l}\n"));
        }
        out.push_str("```\n\n");
        if let Some(chain) = diverging_chain(line.as_deref(), text) {
            out.push_str("Diverging correlation chain:\n\n");
            for r in chain {
                out.push_str(&format!(
                    "- seq {} corr {} [{}] {}\n",
                    r.seq,
                    r.corr,
                    r.event.domain(),
                    r.event.describe()
                ));
            }
            out.push('\n');
        }
    }
    out
}

/// Decode the full log and the diverging line; when both succeed and the
/// line carries a correlation id, return that chain's records.
fn diverging_chain(line: Option<&str>, text: &str) -> Option<Vec<FlightRecord>> {
    let record = decode_flight_record(line?).ok()?;
    if record.corr == CORR_NONE {
        return None;
    }
    let records: Vec<FlightRecord> = text
        .lines()
        .filter_map(|l| decode_flight_record(l).ok())
        .collect();
    let chain: Vec<FlightRecord> = chain_records(&records, record.corr)
        .into_iter()
        .cloned()
        .collect();
    if chain.is_empty() {
        None
    } else {
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_logs_have_no_divergence() {
        let log = "ev 0 10 0 rlkill\nev 1 20 1 fwd 5\n";
        assert_eq!(first_divergence(log, log), None);
    }

    #[test]
    fn first_differing_line_is_reported() {
        let a = "ev 0 10 0 rlkill\nev 1 20 1 fwd 5\nev 2 30 1 fwd 6\n";
        let b = "ev 0 10 0 rlkill\nev 1 20 1 fwd 7\nev 2 30 1 fwd 6\n";
        let div = first_divergence(a, b).expect("diverges");
        assert_eq!(div.index, 1);
        assert_eq!(div.left.as_deref(), Some("ev 1 20 1 fwd 5"));
        assert_eq!(div.right.as_deref(), Some("ev 1 20 1 fwd 7"));
    }

    #[test]
    fn truncation_is_a_divergence() {
        let a = "ev 0 10 0 rlkill\nev 1 20 1 fwd 5\n";
        let b = "ev 0 10 0 rlkill\n";
        let div = first_divergence(a, b).expect("diverges");
        assert_eq!(div.index, 1);
        assert!(div.right.is_none());
    }

    #[test]
    fn report_resolves_the_diverging_chain() {
        let a = "ev 0 10 1 he 1 5\nev 1 20 1 fwd 5\n";
        let b = "ev 0 10 1 he 1 5\nev 1 20 1 fwd 9\n";
        let div = first_divergence(a, b).expect("diverges");
        let report = render_divergence(&div, a, b);
        assert!(report.contains("# Flight-log divergence"));
        assert!(report.contains("Diverging correlation chain"));
        assert!(report.contains("handler entry"), "{report}");
    }
}
