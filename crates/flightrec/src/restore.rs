//! Staged rollback attacks against sealed checkpoint/restore.
//!
//! The hostile OS transports every sealed snapshot and can present any
//! of them (or a mangled one) at restore time. This module stages the
//! four rollback-family attacks end to end — run a real workload,
//! snapshot it, crash the host, then offer the failover host a bad blob
//! — and reports whether the restore path (a) refused, (b) recorded an
//! `AttackDetected` verdict in the flight ring, and (c) let forensics
//! resolve that verdict back to the staged injection. The CI
//! `rollback-attack` gate requires all three across many seeds.

use autarky_os_sim::flight::causal_root_of_attack;
use autarky_os_sim::{FlightEvent, FlightRecord, InjectedFault, Observation, Os};
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::MonotonicCounter;
use autarky_snapshot::{restore, snapshot};
use autarky_workloads::spell;

use crate::replay::build_world;
use crate::schedule::{Schedule, SchedulePolicy, ScheduleWorkload};

/// The rollback-family attack being staged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackScenario {
    /// Offer an old snapshot after a newer one superseded it.
    Stale,
    /// Offer the same snapshot twice (restore on two hosts).
    Fork,
    /// Offer a truncated blob.
    Truncate,
    /// Roll the platform counter back so a stale blob looks fresh.
    CounterRollback,
}

impl RollbackScenario {
    /// Every staged scenario, in the order the CI gate cycles them.
    pub const ALL: [RollbackScenario; 4] = [
        RollbackScenario::Stale,
        RollbackScenario::Fork,
        RollbackScenario::Truncate,
        RollbackScenario::CounterRollback,
    ];

    /// Stable label for reports.
    pub fn name(self) -> &'static str {
        match self {
            RollbackScenario::Stale => "stale",
            RollbackScenario::Fork => "fork",
            RollbackScenario::Truncate => "truncate",
            RollbackScenario::CounterRollback => "counter-rollback",
        }
    }
}

/// What one staged attack produced.
#[derive(Debug, Clone)]
pub struct RollbackOutcome {
    /// The staged scenario.
    pub scenario: RollbackScenario,
    /// World seed the run used.
    pub seed: u64,
    /// The restore call refused the blob.
    pub restore_failed: bool,
    /// An `AttackDetected` verdict landed in the flight ring.
    pub attack_recorded: bool,
    /// `causal_root_of_attack` resolved the verdict to the staged
    /// injection (not some unrelated event).
    pub root_names_injection: bool,
    /// Display of the restore error (`"ok"` if it wrongly succeeded).
    pub error: String,
    /// The failover host's flight log, for post-mortem rendering.
    pub records: Vec<FlightRecord>,
}

impl RollbackOutcome {
    /// The gate's pass condition: refused, recorded, and attributed.
    pub fn detected(&self) -> bool {
        self.restore_failed && self.attack_recorded && self.root_names_injection
    }
}

/// Stage one rollback attack end to end on a spell-checker world.
///
/// The happy-path half (workload, snapshot, failover adoption) must
/// succeed — failures there panic, because they are harness bugs. Only
/// the final hostile restore is allowed to fail, and its outcome is
/// what the caller grades.
pub fn rollback_attack_run(seed: u64, scenario: RollbackScenario) -> RollbackOutcome {
    const DICT_WORDS: usize = 100;
    let schedule = Schedule::quiet(SchedulePolicy::Clusters, ScheduleWorkload::Spell, 0, seed);
    let (mut world, mut heap) = build_world(&schedule);
    let dictionary =
        spell::Dictionary::load(&mut world, &mut heap, "en", DICT_WORDS).expect("dictionary");
    let (text, _) = spell::secret_pair("en", DICT_WORDS, 8);
    for word in &text[..4] {
        dictionary
            .check(&mut world, &mut heap, word)
            .expect("check");
    }
    let eid = world.eid;
    let mut counter = MonotonicCounter::new(world.os.machine.platform_key(), eid);
    let first = snapshot(&world.os, &world.rt, &mut counter).expect("snapshot v1");
    // More work: state the stale blob is missing.
    for word in &text[4..] {
        dictionary
            .check(&mut world, &mut heap, word)
            .expect("check");
    }

    let (blob, injected) = match scenario {
        RollbackScenario::Stale => {
            let _fresh = snapshot(&world.os, &world.rt, &mut counter).expect("snapshot v2");
            (first, InjectedFault::StaleSnapshot { counter: 1 })
        }
        RollbackScenario::Fork => {
            // The first host legitimately restores the blob, consuming
            // its counter value; the attacker then replays it elsewhere.
            let mut mid = Os::new(MachineConfig::default());
            mid.adopt_untrusted_state(&mut world.os, eid)
                .expect("adopt");
            let rt = restore(&mut mid, &mut counter, &first).expect("legitimate restore");
            world.os = mid;
            world.rt = rt;
            (first, InjectedFault::ForkedSnapshot { counter: 1 })
        }
        RollbackScenario::Truncate => {
            let len = first.len() - 7;
            let _fresh = snapshot(&world.os, &world.rt, &mut counter).expect("snapshot v2");
            (
                first[..len].to_vec(),
                InjectedFault::TruncatedSnapshot { len },
            )
        }
        RollbackScenario::CounterRollback => {
            let _fresh = snapshot(&world.os, &world.rt, &mut counter).expect("snapshot v2");
            // Overwrite the counter so the stale blob's sealed value
            // matches again — detectable because the MAC can't be forged.
            counter.hostile_overwrite(1);
            (first, InjectedFault::CounterRollback { to: 1 })
        }
    };

    let mut host = Os::new(MachineConfig::default());
    host.adopt_untrusted_state(&mut world.os, eid)
        .expect("failover host adopts OS-side state");
    host.arm_flight_recorder(512);
    host.record_snapshot_attack(eid, injected);
    let result = restore(&mut host, &mut counter, &blob);
    let (restore_failed, error) = match &result {
        Ok(_) => (false, "ok".to_owned()),
        Err(e) => (true, e.to_string()),
    };
    let records = host.flight_snapshot();
    let attack_recorded = records
        .iter()
        .any(|r| matches!(r.event, FlightEvent::AttackDetected { .. }));
    let root_names_injection = causal_root_of_attack(&records)
        .map(|(_, root)| {
            matches!(
                &root.event,
                FlightEvent::Kernel(Observation::FaultInjected { fault, .. })
                    if *fault == injected
            )
        })
        .unwrap_or(false);
    RollbackOutcome {
        scenario,
        seed,
        restore_failed,
        attack_recorded,
        root_names_injection,
        error,
        records,
    }
}
