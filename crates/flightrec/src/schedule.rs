//! Recorded schedules: the coordinates that fully determine a run.
//!
//! A schedule is everything the replay engine needs to re-drive os-sim
//! and the runtime into the exact same sequence of decisions: the paging
//! policy, the workload, the secret class, the build seed, and (when the
//! run was adversarial) the injected fault plan. It serializes to a few
//! text lines in the `os-sim::wire` idiom — line-oriented, serde-free,
//! exactly round-trippable:
//!
//! ```text
//! # autarky flightrec schedule v1
//! run policy=clusters workload=spell secret=0 seed=1
//! plan seed=9 nomem=0000000000000000 ...        (optional)
//! ```

use autarky_os_sim::wire::{decode_fault_plan, encode_fault_plan, WireError};
use autarky_os_sim::FaultPlan;

/// The paging policies the determinism gate covers (the three protected
/// configurations with distinct decision surfaces: cluster choice,
/// rate-limit admission, ORAM access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Self-paging with automatic page clusters.
    Clusters,
    /// Rate-limited demand paging.
    RateLimit,
    /// Cached-ORAM data path (everything pinned).
    CachedOram,
}

impl SchedulePolicy {
    /// Every policy the gate runs.
    pub const ALL: [SchedulePolicy; 3] = [
        SchedulePolicy::Clusters,
        SchedulePolicy::RateLimit,
        SchedulePolicy::CachedOram,
    ];

    /// Stable wire tag.
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::Clusters => "clusters",
            SchedulePolicy::RateLimit => "rate-limit",
            SchedulePolicy::CachedOram => "cached-oram",
        }
    }

    /// Resolve a wire tag back to a policy (external matrix drivers
    /// name cells by these tags).
    pub fn from_name(tag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == tag)
    }
}

/// The workloads a schedule can drive (the leakage audit's victims).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleWorkload {
    /// JPEG decode (libjpeg flatness victim).
    Jpeg,
    /// Glyph rendering (FreeType victim).
    Font,
    /// Dictionary lookups (Hunspell victim).
    Spell,
    /// Key-value store gets (Figure 8 store).
    Kvstore,
}

impl ScheduleWorkload {
    /// Every workload a schedule can name.
    pub const ALL: [ScheduleWorkload; 4] = [
        ScheduleWorkload::Jpeg,
        ScheduleWorkload::Font,
        ScheduleWorkload::Spell,
        ScheduleWorkload::Kvstore,
    ];

    /// Stable wire tag.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleWorkload::Jpeg => "jpeg",
            ScheduleWorkload::Font => "font",
            ScheduleWorkload::Spell => "spell",
            ScheduleWorkload::Kvstore => "kvstore",
        }
    }

    /// Resolve a wire tag back to a workload.
    pub fn from_name(tag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|w| w.name() == tag)
    }
}

/// A recorded schedule: replaying it reproduces the flight log bit for
/// bit (see [`crate::replay::verify_replay`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Paging policy under test.
    pub policy: SchedulePolicy,
    /// Workload to drive.
    pub workload: ScheduleWorkload,
    /// Secret class (selects one side of the workload's secret pair).
    pub secret: u32,
    /// Build seed (ORAM randomness; also offsets the world seed).
    pub seed: u64,
    /// Injected fault plan for adversarial runs, armed after workload
    /// setup so the secret-dependent phase runs under fire.
    pub fault_plan: Option<FaultPlan>,
}

impl Schedule {
    /// A quiescent (no injected faults) schedule.
    pub fn quiet(
        policy: SchedulePolicy,
        workload: ScheduleWorkload,
        secret: u32,
        seed: u64,
    ) -> Self {
        Self {
            policy,
            workload,
            secret,
            seed,
            fault_plan: None,
        }
    }

    /// The CI determinism matrix: one short run per paging policy, each
    /// on the workload that exercises that policy's decision surface.
    pub fn ci_matrix() -> Vec<Schedule> {
        vec![
            Schedule::quiet(SchedulePolicy::Clusters, ScheduleWorkload::Spell, 0, 1),
            Schedule::quiet(SchedulePolicy::RateLimit, ScheduleWorkload::Font, 0, 1),
            Schedule::quiet(SchedulePolicy::CachedOram, ScheduleWorkload::Kvstore, 0, 1),
        ]
    }

    /// The restore-determinism matrix: every policy × the two
    /// incremental workloads (spell, kvstore) whose operation loops have
    /// a natural mid-run interruption point for the snapshot → crash →
    /// restore cycle.
    pub fn restore_matrix() -> Vec<Schedule> {
        let mut out = Vec::new();
        for policy in SchedulePolicy::ALL {
            for workload in [ScheduleWorkload::Spell, ScheduleWorkload::Kvstore] {
                out.push(Schedule::quiet(policy, workload, 0, 1));
            }
        }
        out
    }

    /// Serialize in the wire grammar (round-trips via [`Schedule::from_text`]).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# autarky flightrec schedule v1\n");
        out.push_str(&format!(
            "run policy={} workload={} secret={} seed={}\n",
            self.policy.name(),
            self.workload.name(),
            self.secret,
            self.seed
        ));
        if let Some(plan) = &self.fault_plan {
            out.push_str(&encode_fault_plan(plan));
            out.push('\n');
        }
        out
    }

    /// Parse a schedule produced by [`Schedule::to_text`]. Comments and
    /// blank lines are skipped, matching the rest of the wire grammar.
    pub fn from_text(text: &str) -> Result<Schedule, WireError> {
        let mut run: Option<Schedule> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("run ") {
                run = Some(parse_run_line(rest, line)?);
            } else if line.starts_with("plan ") {
                let schedule = run.as_mut().ok_or(WireError {
                    what: "plan before run line",
                    line: line.to_owned(),
                })?;
                schedule.fault_plan = Some(decode_fault_plan(line)?);
            } else {
                return Err(WireError {
                    what: "schedule line",
                    line: line.to_owned(),
                });
            }
        }
        run.ok_or(WireError {
            what: "missing run line",
            line: text.lines().next().unwrap_or("").to_owned(),
        })
    }
}

fn parse_run_line(rest: &str, line: &str) -> Result<Schedule, WireError> {
    let mut policy = None;
    let mut workload = None;
    let mut secret = None;
    let mut seed = None;
    for field in rest.split_whitespace() {
        let (key, value) = field.split_once('=').ok_or(WireError {
            what: "key=value",
            line: line.to_owned(),
        })?;
        let bad = |what| WireError {
            what,
            line: line.to_owned(),
        };
        match key {
            "policy" => {
                policy = Some(SchedulePolicy::from_name(value).ok_or(bad("policy tag"))?);
            }
            "workload" => {
                workload = Some(ScheduleWorkload::from_name(value).ok_or(bad("workload tag"))?);
            }
            "secret" => secret = Some(value.parse().map_err(|_| bad("secret"))?),
            "seed" => seed = Some(value.parse().map_err(|_| bad("seed"))?),
            _ => return Err(bad("run key")),
        }
    }
    let missing = |what| WireError {
        what,
        line: line.to_owned(),
    };
    Ok(Schedule {
        policy: policy.ok_or(missing("missing policy"))?,
        workload: workload.ok_or(missing("missing workload"))?,
        secret: secret.ok_or(missing("missing secret"))?,
        seed: seed.ok_or(missing("missing seed"))?,
        fault_plan: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_without_plan() {
        for schedule in Schedule::ci_matrix() {
            let text = schedule.to_text();
            assert_eq!(Schedule::from_text(&text).expect("parses"), schedule);
        }
    }

    #[test]
    fn roundtrip_with_plan() {
        let schedule = Schedule {
            fault_plan: Some(FaultPlan {
                spurious_evict: 1.0,
                ..FaultPlan::transient_only(9, 0.125)
            }),
            ..Schedule::quiet(SchedulePolicy::Clusters, ScheduleWorkload::Kvstore, 1, 7)
        };
        let text = schedule.to_text();
        assert_eq!(Schedule::from_text(&text).expect("parses"), schedule);
    }

    #[test]
    fn malformed_schedules_are_rejected() {
        for bad in [
            "",
            "run policy=clusters workload=spell secret=0",
            "run policy=nope workload=spell secret=0 seed=1",
            "plan seed=1\nrun policy=clusters workload=spell secret=0 seed=1",
            "run policy=clusters workload=spell secret=0 seed=1\nwhat is this",
        ] {
            assert!(Schedule::from_text(bad).is_err(), "{bad:?}");
        }
    }
}
