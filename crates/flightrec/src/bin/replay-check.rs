//! The CI replay-determinism gate: record one short run per paging
//! policy, replay it from the same schedule, and fail on any event-log
//! or telemetry-snapshot divergence.
//!
//! ```text
//! replay-check [--forensics out.md] [--log-dir dir]
//! ```
//!
//! On failure the post-mortem (forensics timeline of the recording plus
//! the causal divergence report) is written to `--forensics` so CI can
//! upload it as an artifact. With `--log-dir`, every recorded flight log
//! and its schedule are written out regardless of outcome, so a failed
//! run can be re-examined locally with the `forensics` binary.

use std::process::ExitCode;

use autarky_flightrec::{render_divergence, verify_replay, Schedule};
use autarky_os_sim::flight::render_timeline;

fn main() -> ExitCode {
    let mut forensics_out: Option<String> = None;
    let mut log_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--forensics" => forensics_out = Some(value("--forensics")),
            "--log-dir" => log_dir = Some(value("--log-dir")),
            "--help" | "-h" => {
                println!("usage: replay-check [--forensics out.md] [--log-dir dir]");
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let mut failures = Vec::new();
    for schedule in Schedule::ci_matrix() {
        let label = format!("{}/{}", schedule.policy.name(), schedule.workload.name());
        let verdict = verify_replay(&schedule);
        if let Some(dir) = &log_dir {
            write_or_die(
                &format!(
                    "{dir}/{}-{}.schedule",
                    schedule.policy.name(),
                    schedule.workload.name()
                ),
                &schedule.to_text(),
            );
            write_or_die(
                &format!(
                    "{dir}/{}-{}.flight.log",
                    schedule.policy.name(),
                    schedule.workload.name()
                ),
                &verdict.record.log_text,
            );
        }
        if verdict.deterministic() {
            println!(
                "replay-check {label}: deterministic ({} events, {} telemetry bytes, outcome {})",
                verdict.record.records.len(),
                verdict.record.telemetry_snapshot.len(),
                verdict.record.outcome
            );
            continue;
        }
        eprintln!(
            "replay-check {label}: FAILED (log identical: {}, telemetry identical: {}, \
             outcome identical: {}, decisions resolved: {})",
            verdict.log_identical,
            verdict.telemetry_identical,
            verdict.outcome_identical,
            verdict.decisions_resolved
        );
        let mut report = format!("# Replay determinism failure: {label}\n\n");
        report.push_str(&format!(
            "Schedule:\n\n```\n{}```\n\n",
            verdict.schedule.to_text()
        ));
        if let Some(div) = &verdict.divergence {
            report.push_str(&render_divergence(
                div,
                &verdict.record.log_text,
                &verdict.replay.log_text,
            ));
            report.push('\n');
        }
        report.push_str(&render_timeline(&verdict.record.records, 50));
        failures.push(report);
    }

    if failures.is_empty() {
        return ExitCode::SUCCESS;
    }
    let report = failures.join("\n\n---\n\n");
    match &forensics_out {
        Some(path) => {
            write_or_die(path, &report);
            eprintln!("replay-check: wrote post-mortem to {path}");
        }
        None => eprint!("{report}"),
    }
    ExitCode::FAILURE
}

fn write_or_die(path: &str, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        die(&format!("cannot write {path}: {e}"));
    }
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
