//! The CI checkpoint/restore gate, two halves:
//!
//! * **restore-determinism** — for every paging policy × incremental
//!   workload, run the schedule uninterrupted and again with a mid-run
//!   snapshot → host crash → failover restore, and fail on any flight-log
//!   or telemetry divergence (a successful restore must be
//!   architecturally invisible);
//! * **rollback-attack** — across many seeds, stage the four
//!   rollback-family attacks (stale, fork, truncated, counter-rollback)
//!   and fail unless every one is refused, recorded as `AttackDetected`,
//!   and attributed to the staged injection by the forensics pass.
//!
//! ```text
//! snapshot-check [--mode determinism|rollback|all] [--seeds N] [--forensics out.md]
//! ```
//!
//! On failure the post-mortem (divergence report or the failover host's
//! forensics timeline) is written to `--forensics` so CI can upload it.

use std::process::ExitCode;

use autarky_flightrec::{
    render_divergence, rollback_attack_run, verify_restore_replay, RollbackScenario, Schedule,
};
use autarky_os_sim::flight::render_timeline;

fn main() -> ExitCode {
    let mut mode = "all".to_owned();
    let mut seeds: u64 = 20;
    let mut forensics_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--mode" => mode = value("--mode"),
            "--seeds" => {
                seeds = value("--seeds")
                    .parse()
                    .unwrap_or_else(|_| die("--seeds needs a number"));
            }
            "--forensics" => forensics_out = Some(value("--forensics")),
            "--help" | "-h" => {
                println!(
                    "usage: snapshot-check [--mode determinism|rollback|all] [--seeds N] \
                     [--forensics out.md]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    if !matches!(mode.as_str(), "determinism" | "rollback" | "all") {
        die(&format!("unknown mode: {mode}"));
    }

    let mut failures = Vec::new();

    if mode != "rollback" {
        for schedule in Schedule::restore_matrix() {
            let label = format!("{}/{}", schedule.policy.name(), schedule.workload.name());
            let verdict = verify_restore_replay(&schedule);
            if verdict.deterministic() {
                println!(
                    "snapshot-check {label}: restore-deterministic \
                     ({} events, {} telemetry bytes, outcome {})",
                    verdict.record.records.len(),
                    verdict.record.telemetry_snapshot.len(),
                    verdict.record.outcome
                );
                continue;
            }
            eprintln!(
                "snapshot-check {label}: FAILED (log identical: {}, telemetry identical: {}, \
                 outcome identical: {}, decisions resolved: {})",
                verdict.log_identical,
                verdict.telemetry_identical,
                verdict.outcome_identical,
                verdict.decisions_resolved
            );
            let mut report = format!("# Restore determinism failure: {label}\n\n");
            report.push_str(&format!(
                "Uninterrupted run vs snapshot/crash/restore run.\n\nSchedule:\n\n```\n{}```\n\n",
                verdict.schedule.to_text()
            ));
            if let Some(div) = &verdict.divergence {
                report.push_str(&render_divergence(
                    div,
                    &verdict.record.log_text,
                    &verdict.replay.log_text,
                ));
                report.push('\n');
            }
            report.push_str(&render_timeline(&verdict.record.records, 50));
            failures.push(report);
        }
    }

    if mode != "determinism" {
        let mut detected = 0u64;
        for seed in 0..seeds {
            let scenario = RollbackScenario::ALL[(seed % 4) as usize];
            let outcome = rollback_attack_run(seed, scenario);
            if outcome.detected() {
                detected += 1;
                continue;
            }
            eprintln!(
                "snapshot-check rollback seed {seed} ({}): FAILED \
                 (refused: {}, verdict recorded: {}, root attributed: {}, error: {})",
                scenario.name(),
                outcome.restore_failed,
                outcome.attack_recorded,
                outcome.root_names_injection,
                outcome.error
            );
            let mut report = format!(
                "# Rollback attack not detected: seed {seed}, scenario {}\n\n\
                 refused: {}, verdict recorded: {}, root attributed: {}, error: `{}`\n\n",
                scenario.name(),
                outcome.restore_failed,
                outcome.attack_recorded,
                outcome.root_names_injection,
                outcome.error
            );
            report.push_str(&render_timeline(&outcome.records, 50));
            failures.push(report);
        }
        println!("snapshot-check rollback: {detected}/{seeds} staged attacks detected");
    }

    if failures.is_empty() {
        return ExitCode::SUCCESS;
    }
    let report = failures.join("\n\n---\n\n");
    match &forensics_out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                die(&format!("cannot write {path}: {e}"));
            }
            eprintln!("snapshot-check: wrote post-mortem to {path}");
        }
        None => eprint!("{report}"),
    }
    ExitCode::FAILURE
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
