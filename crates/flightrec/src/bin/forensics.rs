//! Render a recorded flight log as a markdown post-mortem timeline:
//! the last N events, every runtime decision resolved to its provoking
//! kernel observation, and — when the log ends in an attack verdict —
//! the injected fault identified as the causal root.
//!
//! ```text
//! forensics <flight.log> [--last N] [--out report.md]
//! ```
//!
//! The input is a wire-encoded flight log, e.g. one written by
//! `replay-check --log-dir` or by any harness that serializes
//! `Os::flight_snapshot()` with `wire::encode_flight_log`.

use std::process::ExitCode;

use autarky_os_sim::flight::render_timeline;
use autarky_os_sim::wire::decode_flight_log;

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut last_n: usize = 50;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--last" => {
                last_n = value("--last")
                    .parse()
                    .unwrap_or_else(|_| die("--last needs an integer"));
            }
            "--out" => out = Some(value("--out")),
            "--help" | "-h" => {
                println!("usage: forensics <flight.log> [--last N] [--out report.md]");
                return ExitCode::SUCCESS;
            }
            other if input.is_none() && !other.starts_with('-') => input = Some(other.to_owned()),
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let Some(path) = input else {
        die("missing input: forensics <flight.log> [--last N] [--out report.md]");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => die(&format!("cannot read {path}: {e}")),
    };
    let records = match decode_flight_log(&text) {
        Ok(r) => r,
        Err(e) => die(&format!("{path}: {e}")),
    };
    let report = render_timeline(&records, last_n);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &report) {
                die(&format!("cannot write {path}: {e}"));
            }
            eprintln!("wrote {path}");
        }
        None => print!("{report}"),
    }
    ExitCode::SUCCESS
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
