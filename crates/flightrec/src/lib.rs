//! Deterministic record/replay and attack forensics on top of the
//! causal flight recorder (`autarky_os_sim::flight`).
//!
//! The recorder gives one causally-ordered event log spanning both trust
//! domains. This crate turns that log into an *artifact* with three
//! consumers:
//!
//! * [`schedule`] — a recorded schedule: the `(policy, workload, secret,
//!   seed, fault plan)` coordinates that fully determine a simulated
//!   run, serialized in the hand-rolled `os-sim::wire` grammar so a
//!   failed CI run can be re-driven locally from a few text lines;
//! * [`replay`] — the replay engine: re-run a schedule from scratch and
//!   assert the flight log and the telemetry snapshot are *bit-identical*
//!   to the recording. The recorder's own observer effect (cycles charged
//!   per record) is part of the replayed state, so a run that records is
//!   compared against a replay that records — never against a silent run;
//! * [`diff`] — the trace-diff: the first line where two flight logs
//!   diverge, with the diverging correlation chains resolved on both
//!   sides so the report names the *causal* split, not just the textual
//!   one.
//!
//! The `replay-check` binary is the CI determinism gate (one short run
//! per paging policy, replayed and compared); the `forensics` binary
//! renders a recorded log as a markdown post-mortem timeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod replay;
pub mod restore;
pub mod schedule;

pub use diff::{first_divergence, render_divergence, Divergence};
pub use replay::{
    crash_and_restore, record_run, record_run_with_capacity, record_run_with_restore,
    verify_replay, verify_restore_replay, ReplayVerdict, RunArtifacts, RECORDER_CAPACITY,
};
pub use restore::{rollback_attack_run, RollbackOutcome, RollbackScenario};
pub use schedule::{Schedule, SchedulePolicy, ScheduleWorkload};
