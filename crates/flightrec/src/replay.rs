//! The replay engine: drive a [`Schedule`] through a freshly built
//! world with the flight recorder armed, then drive it *again* and
//! require the two runs to be indistinguishable artifacts.
//!
//! Determinism here is end-to-end: the comparison is on the wire-encoded
//! flight log (every event, cycle stamp, and correlation id) and on the
//! fixed-size telemetry aggregate snapshot. The recorder's observer
//! effect — `RECORD_COST_CYCLES` charged per record under
//! `CostTag::Recorder` — is identical in both runs because both arm the
//! recorder the same way; a recorded run is never compared against a
//! silent one.

use autarky::{Profile, SystemBuilder};
use autarky_os_sim::flight::decisions_resolved;
use autarky_os_sim::wire::encode_flight_log;
use autarky_os_sim::FlightRecord;
use autarky_runtime::RtError;
use autarky_workloads::{font, jpeg, kvstore, spell, EncHeap, World};

use crate::diff::{first_divergence, Divergence};
use crate::schedule::{Schedule, SchedulePolicy, ScheduleWorkload};

/// Flight-ring capacity for recorded runs: comfortably larger than any
/// CI schedule produces, so recordings never wrap (a wrapped recording
/// still replays identically, but the post-mortem would lose its head).
pub const RECORDER_CAPACITY: usize = 1 << 16;

/// Self-paging resident budget. Deliberately tighter than the leakage
/// audit's 48: the determinism gate wants the full decision surface in
/// the log (faults, cluster fetches, evictions, rate-limit admissions),
/// so the working set must not fit.
const BUDGET_PAGES: usize = 32;

/// Everything one recorded run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifacts {
    /// The decoded flight log.
    pub records: Vec<FlightRecord>,
    /// The same log, wire-encoded (the comparison surface).
    pub log_text: String,
    /// The fixed-size telemetry aggregate snapshot.
    pub telemetry_snapshot: Vec<u8>,
    /// `"ok"`, or the runtime error display when the run terminated.
    pub outcome: String,
    /// Events the ring dropped (0 for every CI schedule).
    pub dropped: u64,
}

/// The record → replay comparison for one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayVerdict {
    /// The schedule that was run twice.
    pub schedule: Schedule,
    /// Whether the wire-encoded flight logs were byte-identical.
    pub log_identical: bool,
    /// Whether the telemetry snapshots were byte-identical.
    pub telemetry_identical: bool,
    /// Whether both runs ended the same way.
    pub outcome_identical: bool,
    /// Whether every runtime decision in the last 50 recorded events
    /// resolves to its provoking chain root.
    pub decisions_resolved: bool,
    /// First causal divergence between the two logs, when any.
    pub divergence: Option<Divergence>,
    /// The recording.
    pub record: RunArtifacts,
    /// The replay.
    pub replay: RunArtifacts,
}

impl ReplayVerdict {
    /// The determinism gate: bit-identical artifacts and a fully
    /// resolved decision window.
    pub fn deterministic(&self) -> bool {
        self.log_identical
            && self.telemetry_identical
            && self.outcome_identical
            && self.decisions_resolved
    }
}

/// Record one run of `schedule`: build the world, arm the recorder, run
/// the workload (arming the fault plan after setup), and capture the
/// artifacts.
pub fn record_run(schedule: &Schedule) -> RunArtifacts {
    let (mut world, mut heap) = build_world(schedule);
    world.os.arm_flight_recorder(RECORDER_CAPACITY);
    let outcome = match run_workload(schedule, &mut world, &mut heap) {
        Ok(()) => "ok".to_owned(),
        Err(e) => format!("err: {e}"),
    };
    let recorder = world
        .os
        .disarm_flight_recorder()
        .expect("recorder was armed for the whole run");
    let records = recorder.snapshot();
    let log_text = encode_flight_log(&records);
    RunArtifacts {
        log_text,
        telemetry_snapshot: world.rt.telemetry.snapshot_bytes(),
        outcome,
        dropped: recorder.dropped(),
        records,
    }
}

/// Run `schedule` twice from scratch and compare the artifacts.
pub fn verify_replay(schedule: &Schedule) -> ReplayVerdict {
    let record = record_run(schedule);
    let replay = record_run(schedule);
    let divergence = first_divergence(&record.log_text, &replay.log_text);
    ReplayVerdict {
        schedule: schedule.clone(),
        log_identical: record.log_text == replay.log_text,
        telemetry_identical: record.telemetry_snapshot == replay.telemetry_snapshot,
        outcome_identical: record.outcome == replay.outcome,
        decisions_resolved: decisions_resolved(&record.records, 50),
        divergence,
        record,
        replay,
    }
}

/// Build the world for a schedule, mirroring the leakage audit's
/// geometry so runs page under pressure.
fn build_world(schedule: &Schedule) -> (World, EncHeap) {
    let (profile, budget) = match schedule.policy {
        SchedulePolicy::Clusters => (
            Profile::Clusters {
                pages_per_cluster: 10,
            },
            BUDGET_PAGES,
        ),
        SchedulePolicy::RateLimit => (
            Profile::RateLimited {
                max_faults_per_progress: 64.0,
                burst: 4096,
            },
            BUDGET_PAGES,
        ),
        SchedulePolicy::CachedOram => (
            Profile::CachedOram {
                capacity_pages: 512,
                cache_pages: 24,
            },
            0,
        ),
    };
    let (world, heap) = SystemBuilder::new("flightrec", profile)
        .epc_pages(4096)
        .heap_pages(1024)
        .code_pages(24)
        .budget_pages(budget)
        .seed(0xF11_6000 + schedule.seed * 7919)
        .build()
        .expect("flightrec world builds");
    (world, heap)
}

/// Arm the schedule's fault plan (after setup, so the secret phase runs
/// under fire) and drive the workload.
fn run_workload(schedule: &Schedule, world: &mut World, heap: &mut EncHeap) -> Result<(), RtError> {
    match schedule.workload {
        ScheduleWorkload::Jpeg => {
            const SIDE: usize = 32;
            let (img_a, img_b) = jpeg::secret_pair(SIDE);
            let image = if schedule.secret == 0 { img_a } else { img_b };
            let compressed = jpeg::encode(SIDE, SIDE, &image);
            let mut decoder = jpeg::Decoder::new(world, heap, SIDE, SIDE).expect("decoder");
            begin_secret_phase(schedule, world)?;
            decoder.decode(world, heap, &compressed)?;
        }
        ScheduleWorkload::Font => {
            const LEN: usize = 16;
            let (text_a, text_b) = font::secret_pair(LEN);
            let text = if schedule.secret == 0 { text_a } else { text_b };
            let mut renderer = font::FontRenderer::new(world, heap, LEN).expect("renderer");
            begin_secret_phase(schedule, world)?;
            renderer.render_text(world, heap, &text)?;
        }
        ScheduleWorkload::Spell => {
            const DICT_WORDS: usize = 300;
            const QUERY_WORDS: usize = 24;
            let dictionary = spell::Dictionary::load(world, heap, "en", DICT_WORDS).expect("dict");
            let (text_a, text_b) = spell::secret_pair("en", DICT_WORDS, QUERY_WORDS);
            let text = if schedule.secret == 0 { text_a } else { text_b };
            begin_secret_phase(schedule, world)?;
            for (i, word) in text.iter().enumerate() {
                dictionary.check(world, heap, word)?;
                if (i + 1) % 8 == 0 {
                    world.rt.export_epoch(&mut world.os)?;
                }
            }
        }
        ScheduleWorkload::Kvstore => {
            const ITEMS: u64 = 128;
            const VALUE_SIZE: usize = 512;
            const GETS: usize = 48;
            let mut store = kvstore::KvStore::new(
                world,
                heap,
                ITEMS,
                VALUE_SIZE,
                kvstore::ItemClustering::None,
            )
            .expect("store");
            store.load(world, heap, ITEMS).expect("load");
            let (keys_a, keys_b) = kvstore::secret_pair(ITEMS, GETS);
            let keys = if schedule.secret == 0 { keys_a } else { keys_b };
            begin_secret_phase(schedule, world)?;
            for (i, &key) in keys.iter().enumerate() {
                store.get(world, heap, key)?;
                if (i + 1) % 16 == 0 {
                    world.rt.export_epoch(&mut world.os)?;
                }
            }
        }
    }
    Ok(())
}

/// Transition from setup to the secret-dependent phase: page the
/// enclave out (self-paging policies only — under PinAll that would
/// manufacture attack verdicts), so the phase re-faults its working set
/// and the log carries the full fault → decision → fetch surface; then
/// arm the schedule's fault plan.
fn begin_secret_phase(schedule: &Schedule, world: &mut World) -> Result<(), RtError> {
    if schedule.policy != SchedulePolicy::CachedOram {
        let resident: Vec<_> = world
            .image
            .code_range()
            .chain(world.image.heap_range())
            .filter(|&p| world.rt.residency(p) == Some(true))
            .collect();
        world.rt.evict_pages(&mut world.os, &resident)?;
    }
    if let Some(plan) = &schedule.fault_plan {
        world.os.arm_fault_plan(plan.clone());
    }
    Ok(())
}
