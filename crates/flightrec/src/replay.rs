//! The replay engine: drive a [`Schedule`] through a freshly built
//! world with the flight recorder armed, then drive it *again* and
//! require the two runs to be indistinguishable artifacts.
//!
//! Determinism here is end-to-end: the comparison is on the wire-encoded
//! flight log (every event, cycle stamp, and correlation id) and on the
//! fixed-size telemetry aggregate snapshot. The recorder's observer
//! effect — `RECORD_COST_CYCLES` charged per record under
//! `CostTag::Recorder` — is identical in both runs because both arm the
//! recorder the same way; a recorded run is never compared against a
//! silent one.

use autarky::{Profile, SystemBuilder};
use autarky_os_sim::flight::decisions_resolved;
use autarky_os_sim::wire::encode_flight_log;
use autarky_os_sim::{FlightRecord, Os};
use autarky_runtime::RtError;
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::MonotonicCounter;
use autarky_workloads::{font, jpeg, kvstore, spell, EncHeap, World};

use crate::diff::{first_divergence, Divergence};
use crate::schedule::{Schedule, SchedulePolicy, ScheduleWorkload};

/// Flight-ring capacity for recorded runs: comfortably larger than any
/// CI schedule produces, so recordings never wrap (a wrapped recording
/// still replays identically, but the post-mortem would lose its head).
pub const RECORDER_CAPACITY: usize = 1 << 16;

/// Self-paging resident budget. Deliberately tighter than the leakage
/// audit's 48: the determinism gate wants the full decision surface in
/// the log (faults, cluster fetches, evictions, rate-limit admissions),
/// so the working set must not fit.
const BUDGET_PAGES: usize = 32;

/// Everything one recorded run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifacts {
    /// The decoded flight log.
    pub records: Vec<FlightRecord>,
    /// The same log, wire-encoded (the comparison surface).
    pub log_text: String,
    /// The fixed-size telemetry aggregate snapshot.
    pub telemetry_snapshot: Vec<u8>,
    /// `"ok"`, or the runtime error display when the run terminated.
    pub outcome: String,
    /// Events the ring dropped (0 for every CI schedule).
    pub dropped: u64,
}

/// The record → replay comparison for one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayVerdict {
    /// The schedule that was run twice.
    pub schedule: Schedule,
    /// Whether the wire-encoded flight logs were byte-identical.
    pub log_identical: bool,
    /// Whether the telemetry snapshots were byte-identical.
    pub telemetry_identical: bool,
    /// Whether both runs ended the same way.
    pub outcome_identical: bool,
    /// Whether every runtime decision in the last 50 recorded events
    /// resolves to its provoking chain root.
    pub decisions_resolved: bool,
    /// First causal divergence between the two logs, when any.
    pub divergence: Option<Divergence>,
    /// The recording.
    pub record: RunArtifacts,
    /// The replay.
    pub replay: RunArtifacts,
}

impl ReplayVerdict {
    /// The determinism gate: bit-identical artifacts and a fully
    /// resolved decision window.
    pub fn deterministic(&self) -> bool {
        self.log_identical
            && self.telemetry_identical
            && self.outcome_identical
            && self.decisions_resolved
    }
}

/// Record one run of `schedule`: build the world, arm the recorder, run
/// the workload (arming the fault plan after setup), and capture the
/// artifacts.
pub fn record_run(schedule: &Schedule) -> RunArtifacts {
    record_run_inner(schedule, RECORDER_CAPACITY, false)
}

/// [`record_run`] with an explicit flight-ring capacity, for exercising
/// the ring's overwrite-oldest overflow path: a saturated ring must drop
/// deterministically (same `dropped` count, same surviving suffix) so
/// post-mortems of long runs stay replayable.
pub fn record_run_with_capacity(schedule: &Schedule, capacity: usize) -> RunArtifacts {
    record_run_inner(schedule, capacity, false)
}

/// Record one run of `schedule`, interrupting the secret phase at its
/// midpoint with a sealed snapshot, a host crash, and a restore onto a
/// freshly booted machine. The tentpole determinism claim: the returned
/// artifacts are byte-identical to an uninterrupted [`record_run`],
/// because a successful snapshot/restore cycle records nothing and
/// charges no cycles — the machine was simply off.
pub fn record_run_with_restore(schedule: &Schedule) -> RunArtifacts {
    record_run_inner(schedule, RECORDER_CAPACITY, true)
}

fn record_run_inner(schedule: &Schedule, capacity: usize, restore_midway: bool) -> RunArtifacts {
    let (mut world, mut heap) = build_world(schedule);
    world.os.arm_flight_recorder(capacity);
    let mut hook: Option<MidHook> = restore_midway.then_some(crash_and_restore as MidHook);
    let outcome = match run_workload_hooked(schedule, &mut world, &mut heap, &mut hook) {
        Ok(()) => "ok".to_owned(),
        Err(e) => format!("err: {e}"),
    };
    let recorder = world
        .os
        .disarm_flight_recorder()
        .expect("recorder was armed for the whole run");
    let records = recorder.snapshot();
    let log_text = encode_flight_log(&records);
    RunArtifacts {
        log_text,
        telemetry_snapshot: world.rt.telemetry.snapshot_bytes(),
        outcome,
        dropped: recorder.dropped(),
        records,
    }
}

/// A mid-workload interruption: called once, at the midpoint of the
/// secret phase, between operations (so correlation chains are closed
/// and machine transitions drained).
type MidHook = fn(&mut World);

/// Snapshot the enclave, crash the host, boot a failover host that
/// adopts the enclave's untrusted OS-side state (backing store, fault
/// injector, flight recorder), and restore from the sealed blob.
///
/// Panics on any failure: in the replay harness the snapshot cycle is
/// the happy path, and a failure here is a harness or codec bug, not a
/// simulated attack.
pub fn crash_and_restore(world: &mut World) {
    let mut counter = MonotonicCounter::new(world.os.machine.platform_key(), world.eid);
    let blob =
        autarky_snapshot::snapshot(&world.os, &world.rt, &mut counter).expect("mid-run snapshot");
    // `build_world` uses the default machine geometry; the failover host
    // must match it (a failover to different hardware is out of scope).
    let mut host = Os::new(MachineConfig::default());
    host.adopt_untrusted_state(&mut world.os, world.eid)
        .expect("failover host adopts OS-side state");
    world.os = host;
    world.rt = autarky_snapshot::restore(&mut world.os, &mut counter, &blob)
        .expect("restore on failover host");
}

/// Run `schedule` twice from scratch and compare the artifacts.
pub fn verify_replay(schedule: &Schedule) -> ReplayVerdict {
    let record = record_run(schedule);
    let replay = record_run(schedule);
    compare_runs(schedule, record, replay)
}

/// Run `schedule` uninterrupted, then again with a mid-run snapshot →
/// crash → failover-restore cycle, and require the two runs to be
/// indistinguishable artifacts (the `replay` side is the restored run).
pub fn verify_restore_replay(schedule: &Schedule) -> ReplayVerdict {
    let record = record_run(schedule);
    let restored = record_run_with_restore(schedule);
    compare_runs(schedule, record, restored)
}

fn compare_runs(schedule: &Schedule, record: RunArtifacts, replay: RunArtifacts) -> ReplayVerdict {
    let divergence = first_divergence(&record.log_text, &replay.log_text);
    ReplayVerdict {
        schedule: schedule.clone(),
        log_identical: record.log_text == replay.log_text,
        telemetry_identical: record.telemetry_snapshot == replay.telemetry_snapshot,
        outcome_identical: record.outcome == replay.outcome,
        decisions_resolved: decisions_resolved(&record.records, 50),
        divergence,
        record,
        replay,
    }
}

/// Build the world for a schedule, mirroring the leakage audit's
/// geometry so runs page under pressure.
pub(crate) fn build_world(schedule: &Schedule) -> (World, EncHeap) {
    let (profile, budget) = match schedule.policy {
        SchedulePolicy::Clusters => (
            Profile::Clusters {
                pages_per_cluster: 10,
            },
            BUDGET_PAGES,
        ),
        SchedulePolicy::RateLimit => (
            Profile::RateLimited {
                max_faults_per_progress: 64.0,
                burst: 4096,
            },
            BUDGET_PAGES,
        ),
        SchedulePolicy::CachedOram => (
            Profile::CachedOram {
                capacity_pages: 512,
                cache_pages: 24,
            },
            0,
        ),
    };
    let (world, heap) = SystemBuilder::new("flightrec", profile)
        .epc_pages(4096)
        .heap_pages(1024)
        .code_pages(24)
        .budget_pages(budget)
        .seed(0xF11_6000 + schedule.seed * 7919)
        .build()
        .expect("flightrec world builds");
    (world, heap)
}

/// Arm the schedule's fault plan (after setup, so the secret phase runs
/// under fire) and drive the workload. When `hook` is set, fire it once
/// at the midpoint of the secret phase (for [`record_run_with_restore`]);
/// the hook point is between operations, where no correlation chain is
/// open and the machine's transition log has drained.
fn run_workload_hooked(
    schedule: &Schedule,
    world: &mut World,
    heap: &mut EncHeap,
    hook: &mut Option<MidHook>,
) -> Result<(), RtError> {
    match schedule.workload {
        ScheduleWorkload::Jpeg => {
            const SIDE: usize = 32;
            let (img_a, img_b) = jpeg::secret_pair(SIDE);
            let image = if schedule.secret == 0 { img_a } else { img_b };
            let compressed = jpeg::encode(SIDE, SIDE, &image);
            let mut decoder = jpeg::Decoder::new(world, heap, SIDE, SIDE).expect("decoder");
            begin_secret_phase(schedule, world)?;
            // The decode is one opaque operation; interrupt before it.
            fire_hook(hook, world);
            decoder.decode(world, heap, &compressed)?;
        }
        ScheduleWorkload::Font => {
            const LEN: usize = 16;
            let (text_a, text_b) = font::secret_pair(LEN);
            let text = if schedule.secret == 0 { text_a } else { text_b };
            let mut renderer = font::FontRenderer::new(world, heap, LEN).expect("renderer");
            begin_secret_phase(schedule, world)?;
            fire_hook(hook, world);
            renderer.render_text(world, heap, &text)?;
        }
        ScheduleWorkload::Spell => {
            const DICT_WORDS: usize = 300;
            const QUERY_WORDS: usize = 24;
            let dictionary = spell::Dictionary::load(world, heap, "en", DICT_WORDS).expect("dict");
            let (text_a, text_b) = spell::secret_pair("en", DICT_WORDS, QUERY_WORDS);
            let text = if schedule.secret == 0 { text_a } else { text_b };
            begin_secret_phase(schedule, world)?;
            for (i, word) in text.iter().enumerate() {
                if i == QUERY_WORDS / 2 {
                    fire_hook(hook, world);
                }
                dictionary.check(world, heap, word)?;
                if (i + 1) % 8 == 0 {
                    world.rt.export_epoch(&mut world.os)?;
                }
            }
        }
        ScheduleWorkload::Kvstore => {
            const ITEMS: u64 = 128;
            const VALUE_SIZE: usize = 512;
            const GETS: usize = 48;
            let mut store = kvstore::KvStore::new(
                world,
                heap,
                ITEMS,
                VALUE_SIZE,
                kvstore::ItemClustering::None,
            )
            .expect("store");
            store.load(world, heap, ITEMS).expect("load");
            let (keys_a, keys_b) = kvstore::secret_pair(ITEMS, GETS);
            let keys = if schedule.secret == 0 { keys_a } else { keys_b };
            begin_secret_phase(schedule, world)?;
            for (i, &key) in keys.iter().enumerate() {
                if i == GETS / 2 {
                    fire_hook(hook, world);
                }
                store.get(world, heap, key)?;
                if (i + 1) % 16 == 0 {
                    world.rt.export_epoch(&mut world.os)?;
                }
            }
        }
    }
    Ok(())
}

/// Fire the mid-run hook at most once.
fn fire_hook(hook: &mut Option<MidHook>, world: &mut World) {
    if let Some(h) = hook.take() {
        h(world);
    }
}

/// Transition from setup to the secret-dependent phase: page the
/// enclave out (self-paging policies only — under PinAll that would
/// manufacture attack verdicts), so the phase re-faults its working set
/// and the log carries the full fault → decision → fetch surface; then
/// arm the schedule's fault plan.
fn begin_secret_phase(schedule: &Schedule, world: &mut World) -> Result<(), RtError> {
    if schedule.policy != SchedulePolicy::CachedOram {
        let resident: Vec<_> = world
            .image
            .code_range()
            .chain(world.image.heap_range())
            .filter(|&p| world.rt.residency(p) == Some(true))
            .collect();
        world.rt.evict_pages(&mut world.os, &resident)?;
    }
    if let Some(plan) = &schedule.fault_plan {
        world.os.arm_fault_plan(plan.clone());
    }
    Ok(())
}
