//! The fleet supervisor: deterministic scheduling, health-checked
//! failover, admission control, and graceful degradation.
//!
//! N runtime instances share one simulated machine's EPC behind a
//! round-robin request scheduler. The supervisor watches each member's
//! health and walks a fixed escalation ladder when one misbehaves:
//!
//! 1. **retry with backoff** — transient driver failures (including an
//!    injected whole-enclave suspend the OS later resumes) are retried
//!    a bounded number of times, with exponentially growing backoff
//!    charged to the simulated clock;
//! 2. **quarantine** — a member that exhausts its retries (or trips
//!    `AttackDetected`) is pulled from the rotation;
//! 3. **snapshot restart** — the member is torn down and rebuilt from
//!    its latest sealed checkpoint under the monotonic-counter
//!    freshness discipline of `autarky-snapshot`; the restored runtime
//!    must be byte-identical to the checkpointed one;
//! 4. **permanent eviction** — after too many restarts the member
//!    leaves the fleet for good and its remaining requests are
//!    *explicitly rejected*, never silently dropped.
//!
//! Degradation order under EPC pressure: healthy members are asked to
//! shrink their resident sets (`ay_shrink` via
//! [`Runtime::shrink_budget`]) *before* any victim is killed — the
//! self-paging contract means the supervisor can reclaim frames
//! cooperatively instead of evicting behind an enclave's back.
//!
//! Every supervisor decision is recorded as a
//! [`FlightEvent::Supervisor`] causal event so a forensics pass can
//! name *why* an enclave was restarted.
//!
//! [`Runtime::shrink_budget`]: autarky_runtime::Runtime::shrink_budget

use std::collections::VecDeque;

use autarky_os_sim::{
    EnclaveImage, FaultPlan, FlightEvent, FlightRecord, Observation, Os, OsError,
    UntrustedEnclaveState,
};
use autarky_runtime::{RtError, RuntimeConfig};
use autarky_sgx_sim::machine::MachineConfig;
use autarky_sgx_sim::{EnclaveId, MonotonicCounter, Vpn};
use autarky_snapshot::{self as snapshot, SnapError};
use autarky_telemetry::{Histogram, SpanKind};
use autarky_watch::{Alert, WatchConfig, Watchtower};
use autarky_workloads::kvstore::{ItemClustering, KvStore};
use autarky_workloads::request::{Request, Response, Service};
use autarky_workloads::spell::SpellServer;
use autarky_workloads::{EncHeap, EnclaveHandle, World};

use crate::loadgen::TimedRequest;

/// Errors from fleet assembly or supervision.
#[derive(Debug)]
pub enum FleetError {
    /// Runtime-layer failure during boot or data load.
    Rt(RtError),
    /// OS-layer failure.
    Os(OsError),
    /// Snapshot capture/restore failure.
    Snap(SnapError),
    /// Supervisor invariant violated (a bug, not a simulated fault).
    Internal(&'static str),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Rt(e) => write!(f, "runtime: {e}"),
            FleetError::Os(e) => write!(f, "os: {e}"),
            FleetError::Snap(e) => write!(f, "snapshot: {e}"),
            FleetError::Internal(what) => write!(f, "internal: {what}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<RtError> for FleetError {
    fn from(e: RtError) -> Self {
        FleetError::Rt(e)
    }
}

impl From<OsError> for FleetError {
    fn from(e: OsError) -> Self {
        FleetError::Os(e)
    }
}

impl From<SnapError> for FleetError {
    fn from(e: SnapError) -> Self {
        FleetError::Snap(e)
    }
}

/// The workload an individual fleet member serves.
#[derive(Debug, Clone)]
pub enum WorkloadKind {
    /// A key-value store preloaded with `items` values of `value_size`
    /// bytes (GET-only traffic keeps host-side indexes static across a
    /// snapshot restart).
    Kv {
        /// Items preloaded.
        items: u64,
        /// Value size in bytes.
        value_size: usize,
    },
    /// A single-dictionary ("en") spell server of `dict_words` words.
    Spell {
        /// Dictionary size in words.
        dict_words: usize,
    },
}

/// Configuration of one fleet member.
#[derive(Debug, Clone)]
pub struct MemberConfig {
    /// Human-readable name (also the enclave image name).
    pub name: String,
    /// The service this member runs.
    pub workload: WorkloadKind,
    /// Heap pages reserved in the enclave image.
    pub heap_pages: usize,
    /// Per-enclave EPC quota in frames (0 = unlimited).
    pub epc_quota: usize,
    /// Runtime policy for this member.
    pub runtime: RuntimeConfig,
    /// For [`WorkloadKind::Kv`] members: hand the store's allocator
    /// metadata (the bucket array, allocated before any item) back to OS
    /// management after boot — the paper's Memcached-patch shape, where
    /// only *item* pages are registered for self-paging. Ignored for
    /// other workloads.
    pub pin_kv_metadata: bool,
}

/// A fault campaign staged to start mid-run (the CI crash scenario).
///
/// The window opens once the fleet-wide served count crosses
/// `after_total_served` and closes at the first successful failover:
/// the supervisor disarms the injector before restoring the victim, so
/// an unbounded plan (`max_injections: None`) assaults exactly one
/// incarnation rather than every one the supervisor brings back.
#[derive(Debug, Clone)]
pub struct StagedCrash {
    /// Arm the plan once this many requests have been served fleet-wide.
    pub after_total_served: u64,
    /// Index of the member the campaign targets.
    pub member: usize,
    /// The plan; the supervisor adds `.targeting(<member's eid>)`.
    pub plan: FaultPlan,
}

/// Fleet-wide supervisor configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// EPC frames shared by every member.
    pub epc_frames: usize,
    /// The members, in boot order.
    pub members: Vec<MemberConfig>,
    /// Per-member admission queue bound; arrivals past it are rejected.
    pub queue_cap: usize,
    /// Per-request watchdog budget in simulated cycles; a slower
    /// request is a health strike.
    pub watchdog_cycles: u64,
    /// Detection-to-restored budget in simulated cycles for the
    /// snapshot-restart path.
    pub restart_budget_cycles: u64,
    /// Cycles charged to the shared clock per snapshot restart (models
    /// teardown, reload, and sealed-blob decryption; makes the restart
    /// budget a real constraint rather than a free host-side action).
    pub restart_cost_cycles: u64,
    /// Retry ladder depth before quarantine.
    pub max_retries: u32,
    /// Base backoff charged before retry k is `backoff << (k-1)`.
    pub retry_backoff_cycles: u64,
    /// Watchdog strikes tolerated before a restart.
    pub max_watchdog_strikes: u32,
    /// Snapshot restarts tolerated before permanent eviction.
    pub max_restarts: u32,
    /// Healthy-member checkpoint cadence, in served requests
    /// (0 = only the boot checkpoint).
    pub snapshot_every: u64,
    /// Free-frame floor under which the supervisor asks healthy members
    /// to shrink before restarting a victim.
    pub epc_reserve_frames: usize,
    /// Resident-page budget healthy members are shrunk to under
    /// pressure.
    pub shrink_floor_pages: usize,
    /// Flight-recorder ring capacity (0 = recorder off).
    pub flight_capacity: usize,
    /// Optional staged mid-run fault campaign.
    pub staged_crash: Option<StagedCrash>,
    /// Optional streaming watchtower. When set, the supervisor feeds
    /// every flight-ring fault, request completion, and EPC sample into
    /// the detectors each scheduling step, records firings as
    /// [`FlightEvent::WatchAlert`] causal events, and escalates the
    /// alerted member *immediately* — ahead of the watchdog budget.
    pub watch: Option<WatchConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            epc_frames: 4096,
            members: Vec::new(),
            queue_cap: 64,
            watchdog_cycles: 50_000_000,
            restart_budget_cycles: 100_000_000,
            restart_cost_cycles: 5_000_000,
            max_retries: 3,
            retry_backoff_cycles: 100_000,
            max_watchdog_strikes: 2,
            max_restarts: 3,
            snapshot_every: 64,
            epc_reserve_frames: 32,
            shrink_floor_pages: 16,
            flight_capacity: 4096,
            staged_crash: None,
            watch: None,
        }
    }
}

/// Why a request was rejected instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The member's admission queue was full (backpressure shed).
    QueueFull,
    /// The member was permanently evicted from the rotation.
    MemberEvicted,
}

enum ServiceKind {
    Kv(KvStore),
    Spell(SpellServer),
}

impl ServiceKind {
    fn serve(
        &mut self,
        world: &mut World,
        heap: &mut EncHeap,
        request: &Request,
    ) -> Result<Response, RtError> {
        match self {
            ServiceKind::Kv(s) => s.serve(world, heap, request),
            ServiceKind::Spell(s) => s.serve(world, heap, request),
        }
    }
}

/// Rotation state of a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// In the rotation and serving.
    Healthy,
    /// Permanently out of the rotation; its requests are rejected.
    Evicted,
}

/// A sealed checkpoint plus everything needed to restart from it on the
/// live shared host.
struct SnapshotBundle {
    /// The sealed blob (consumed by a successful restore).
    blob: Vec<u8>,
    /// The plaintext runtime bytes at capture time — retained by the
    /// harness so a restore can be asserted byte-identical.
    runtime_bytes: Vec<u8>,
    /// The member's untrusted host state at the same pause point.
    untrusted: UntrustedEnclaveState,
}

/// Per-member accounting the report is built from.
#[derive(Debug, Clone)]
pub struct MemberStats {
    /// Member name.
    pub name: String,
    /// Enclave id.
    pub eid: EnclaveId,
    /// Requests offered by the load generator.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at admission (queue full).
    pub rejected_queue_full: u64,
    /// Requests rejected because the member was evicted.
    pub rejected_evicted: u64,
    /// Retry attempts charged.
    pub retries: u64,
    /// Watchdog (per-request budget) strikes.
    pub watchdog_strikes: u64,
    /// Snapshot restarts performed.
    pub restarts: u32,
    /// Times this member shrank its resident set for a neighbor.
    pub shrinks: u64,
    /// Whether the member ended the run evicted.
    pub evicted: bool,
    /// Whether every restore was byte-identical to its checkpoint.
    pub byte_identical: bool,
    /// Worst detection-to-restored latency over all restarts, cycles.
    pub max_recovery_cycles: u64,
    /// End-to-end request latency histogram (arrival to completion).
    pub latency: Histogram,
    /// Runtime fault count at end of run (fairness probe).
    pub fault_count: u64,
    /// Watchtower alerts attributed to this member.
    pub watch_alerts: u64,
    /// Simulated-cycle timestamp of the member's first watch alert
    /// (0 = never alerted).
    pub first_alert_cycles: u64,
    /// Simulated-cycle timestamp of the member's first failover
    /// (quarantine/restart/evict escalation; 0 = never failed over).
    pub first_failover_cycles: u64,
    /// Per-span-kind cycle totals from the member's in-enclave
    /// telemetry aggregates (kinds with zero spans omitted). The fleet
    /// report merges these across members into one coarse profile; the
    /// fine-grained causal profile lives in `autarky-profile`.
    pub span_profile: Vec<SpanProfileLine>,
}

/// One span kind's aggregate contribution to a member's cycle profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanProfileLine {
    /// Stable span-kind name (e.g. `fault_handler`).
    pub kind: &'static str,
    /// Completed spans of this kind.
    pub count: u64,
    /// Total simulated cycles spent inside this kind.
    pub cycles: u64,
}

struct Member {
    handle: Option<EnclaveHandle>,
    service: ServiceKind,
    heap: EncHeap,
    state: MemberState,
    queue: VecDeque<(u64, Request)>,
    counter: MonotonicCounter,
    snapshot: Option<SnapshotBundle>,
    served_since_snapshot: u64,
    watchdog_strikes: u32,
    stats: MemberStats,
}

/// The assembled fleet: one shared host, N members, and the supervisor
/// state machine.
pub struct Fleet {
    os: Option<Os>,
    members: Vec<Member>,
    cfg: FleetConfig,
    rr_cursor: usize,
    total_served: u64,
    crash_armed: bool,
    tower: Option<Watchtower>,
    flight_cursor: u64,
    alert_history: Vec<Alert>,
}

impl Fleet {
    /// Boot the shared host, load every member, preload its workload
    /// data, and take each member's boot checkpoint.
    pub fn new(cfg: FleetConfig) -> Result<Self, FleetError> {
        let mut os = Os::new(MachineConfig {
            epc_frames: cfg.epc_frames,
            ..Default::default()
        });
        if cfg.flight_capacity > 0 {
            os.arm_flight_recorder(cfg.flight_capacity);
        }
        let mut os_slot = Some(os);
        let mut members = Vec::with_capacity(cfg.members.len());
        for mc in &cfg.members {
            let mut os = os_slot
                .take()
                .ok_or(FleetError::Internal("os slot empty"))?;
            let mut image = EnclaveImage::named(&mc.name);
            image.heap_pages = mc.heap_pages;
            let handle = World::attach_to(&mut os, image, mc.runtime.clone())?;
            let eid = handle.eid;
            if mc.epc_quota > 0 {
                os.set_epc_quota(eid, mc.epc_quota)?;
            }
            let mut heap = EncHeap::direct();
            let mut world = World::join(os, handle);
            let service = match mc.workload {
                WorkloadKind::Kv { items, value_size } => {
                    let mut store = KvStore::new(
                        &mut world,
                        &mut heap,
                        items,
                        value_size,
                        ItemClustering::None,
                    )?;
                    if mc.pin_kv_metadata {
                        // The store's first allocation is its bucket
                        // array; everything backed before the first item
                        // insert is allocator metadata. Hand it back to
                        // OS management (the paper's Memcached patch:
                        // only item pages self-page) so the hot index is
                        // never an eviction candidate.
                        let meta: Vec<Vpn> = (world.image.heap_start().0
                            ..world.rt.heap_frontier().0)
                            .map(Vpn)
                            .collect();
                        let World { os, rt, .. } = &mut world;
                        rt.pin_os_managed(os, &meta)?;
                    }
                    store.load(&mut world, &mut heap, items)?;
                    ServiceKind::Kv(store)
                }
                WorkloadKind::Spell { dict_words } => {
                    let server =
                        SpellServer::start(&mut world, &mut heap, &["en"], dict_words, false)?;
                    ServiceKind::Spell(server)
                }
            };
            let (os, handle) = world.split();
            let mut counter = MonotonicCounter::new(os.machine.platform_key(), eid);
            let bundle = Self::snapshot_member(&os, &handle, &mut counter)?;
            members.push(Member {
                handle: Some(handle),
                service,
                heap,
                state: MemberState::Healthy,
                queue: VecDeque::new(),
                counter,
                snapshot: Some(bundle),
                served_since_snapshot: 0,
                watchdog_strikes: 0,
                stats: MemberStats {
                    name: mc.name.clone(),
                    eid,
                    offered: 0,
                    served: 0,
                    rejected_queue_full: 0,
                    rejected_evicted: 0,
                    retries: 0,
                    watchdog_strikes: 0,
                    restarts: 0,
                    shrinks: 0,
                    evicted: false,
                    byte_identical: true,
                    max_recovery_cycles: 0,
                    latency: Histogram::new(),
                    fault_count: 0,
                    watch_alerts: 0,
                    first_alert_cycles: 0,
                    first_failover_cycles: 0,
                    span_profile: Vec::new(),
                },
            });
            os_slot = Some(os);
        }
        let tower = cfg.watch.clone().map(|wc| {
            let start = os_slot
                .as_ref()
                .map(|os| os.machine.clock.now())
                .unwrap_or(0);
            let mut tower = Watchtower::new(wc, start);
            for member in &members {
                tower.add_member(member.stats.eid, &member.stats.name);
            }
            tower
        });
        // Boot-time paging is not traffic: start the watch cursor past
        // the load-phase records so baselines see only served load.
        let flight_cursor = os_slot
            .as_mut()
            .map(|os| os.flight_snapshot().last().map(|r| r.seq).unwrap_or(0))
            .unwrap_or(0);
        Ok(Self {
            os: os_slot,
            members,
            cfg,
            rr_cursor: 0,
            total_served: 0,
            crash_armed: false,
            tower,
            flight_cursor,
            alert_history: Vec::new(),
        })
    }

    fn snapshot_member(
        os: &Os,
        handle: &EnclaveHandle,
        counter: &mut MonotonicCounter,
    ) -> Result<SnapshotBundle, FleetError> {
        let checkpoint = snapshot::capture_checkpoint(os, &handle.rt)?;
        let blob = snapshot::seal_checkpoint(os, counter, &checkpoint)?;
        let untrusted = os.capture_untrusted_state(handle.eid)?;
        Ok(SnapshotBundle {
            blob,
            runtime_bytes: checkpoint.runtime,
            untrusted,
        })
    }

    /// The shared host (reads for tests and audits).
    pub fn os(&self) -> &Os {
        match &self.os {
            Some(os) => os,
            // The slot is only empty inside `dispatch`, which never
            // re-enters the supervisor.
            None => unreachable!("os slot is populated between dispatches"),
        }
    }

    fn os_mut(&mut self) -> &mut Os {
        match &mut self.os {
            Some(os) => os,
            None => unreachable!("os slot is populated between dispatches"),
        }
    }

    /// Enclave id of member `index`.
    pub fn member_eid(&self, index: usize) -> EnclaveId {
        self.members[index].stats.eid
    }

    /// Simulated cycles elapsed on the shared clock.
    pub fn now(&self) -> u64 {
        self.os().machine.clock.now()
    }

    fn flight_supervisor(&mut self, eid: EnclaveId, action: &str, why: String) {
        let os = self.os_mut();
        if !os.flight_armed() {
            return;
        }
        let opened = os.flight_begin_chain_if_idle();
        os.flight_record(FlightEvent::Supervisor {
            eid,
            action: action.to_owned(),
            why,
        });
        if opened {
            os.flight_end_chain();
        }
    }

    /// Run one request through member `index`'s service, returning the
    /// result and the cycles the attempt consumed.
    fn dispatch(
        &mut self,
        index: usize,
        request: &Request,
    ) -> Result<(Result<Response, RtError>, u64), FleetError> {
        let os = self
            .os
            .take()
            .ok_or(FleetError::Internal("os slot empty in dispatch"))?;
        let member = &mut self.members[index];
        let handle = match member.handle.take() {
            Some(h) => h,
            None => {
                self.os = Some(os);
                return Err(FleetError::Internal("member handle missing"));
            }
        };
        let mut world = World::join(os, handle);
        let t0 = world.now();
        let result = member.service.serve(&mut world, &mut member.heap, request);
        let elapsed = world.now() - t0;
        let (os, handle) = world.split();
        member.handle = Some(handle);
        self.os = Some(os);
        Ok((result, elapsed))
    }

    fn member_terminated(&self, index: usize) -> bool {
        self.members[index]
            .handle
            .as_ref()
            .map(|h| h.rt.is_terminated())
            .unwrap_or(false)
    }

    /// Ask healthy neighbors of `victim` to shrink their resident sets
    /// (the cooperative `ay_shrink` path) when free EPC is below the
    /// reserve. This is the first step of the degradation order: nobody
    /// is killed while a cooperative reclaim can free frames.
    fn degrade_neighbors(&mut self, victim: usize) -> Result<(), FleetError> {
        if self.os().machine.epc_free_frames() >= self.cfg.epc_reserve_frames {
            return Ok(());
        }
        let floor = self.cfg.shrink_floor_pages;
        for index in 0..self.members.len() {
            if index == victim || self.members[index].state != MemberState::Healthy {
                continue;
            }
            let resident = self.members[index]
                .handle
                .as_ref()
                .map(|h| h.rt.resident_pages())
                .unwrap_or(0);
            if resident <= floor {
                continue;
            }
            let os = self
                .os
                .take()
                .ok_or(FleetError::Internal("os slot empty in degrade"))?;
            let member = &mut self.members[index];
            let handle = match member.handle.take() {
                Some(h) => h,
                None => {
                    self.os = Some(os);
                    continue;
                }
            };
            let mut world = World::join(os, handle);
            let shrink = world.rt.shrink_budget(&mut world.os, floor);
            let (os, handle) = world.split();
            member.handle = Some(handle);
            self.os = Some(os);
            shrink?;
            let eid = self.members[index].stats.eid;
            self.members[index].stats.shrinks += 1;
            self.flight_supervisor(
                eid,
                "shrink",
                format!("cooperative reclaim to {floor} pages for a neighbor restart"),
            );
        }
        Ok(())
    }

    /// Snapshot-based restart: retire the wedged incarnation, reinstate
    /// its untrusted state, restore the sealed checkpoint in place, and
    /// immediately re-checkpoint (a restore consumes its blob).
    fn restart_member(&mut self, index: usize, why: &str) -> Result<(), FleetError> {
        let eid = self.members[index].stats.eid;
        self.flight_supervisor(eid, "quarantine", why.to_owned());
        let detection = self.now();
        self.degrade_neighbors(index)?;

        let bundle = self.members[index]
            .snapshot
            .take()
            .ok_or(FleetError::Internal("member has no checkpoint"))?;
        let image = self.members[index]
            .handle
            .take()
            .ok_or(FleetError::Internal("member handle missing in restart"))?
            .image;

        let cost = self.cfg.restart_cost_cycles;
        let crash_armed = self.crash_armed;
        let os = self.os_mut();
        // The staged fault window closes at the first failover: the
        // injector must not keep assaulting the fresh incarnation (or
        // corrupt the restore path itself), so disarm it before the
        // restore touches any page.
        if crash_armed {
            os.disarm_fault_plan();
        }
        os.machine.clock.charge(cost);
        os.retire_enclave(eid)?;
        os.reinstate_untrusted_state(&bundle.untrusted)?;
        let member = &mut self.members[index];
        let os = match &mut self.os {
            Some(os) => os,
            None => return Err(FleetError::Internal("os slot empty in restart")),
        };
        let rt = snapshot::restore_in_place(os, &mut member.counter, &bundle.blob)?;
        let byte_identical = rt.capture_bytes() == bundle.runtime_bytes;
        member.stats.byte_identical &= byte_identical;
        member.handle = Some(EnclaveHandle { rt, eid, image });
        member.watchdog_strikes = 0;
        member.stats.restarts += 1;
        member.served_since_snapshot = 0;
        // The consumed blob cannot restore twice (fork defense), so the
        // member is re-checkpointed before it serves anything.
        self.checkpoint_member(index)?;
        let recovery = self.now() - detection;
        let member = &mut self.members[index];
        member.stats.max_recovery_cycles = member.stats.max_recovery_cycles.max(recovery);
        self.flight_supervisor(
            eid,
            "restart",
            format!(
                "restored from sealed snapshot in {recovery} cycles (byte-identical: {byte_identical}); cause: {why}"
            ),
        );
        // A fresh incarnation gets a fresh detector baseline: the old
        // lens would re-fire on the very traffic mix the restart is
        // expected to change.
        if let Some(tower) = self.tower.as_mut() {
            tower.reset_member(index);
        }
        Ok(())
    }

    /// Permanent eviction: the member leaves the rotation and every
    /// queued request is explicitly rejected.
    fn evict_member(&mut self, index: usize, why: &str) {
        let eid = self.members[index].stats.eid;
        self.flight_supervisor(eid, "evict", why.to_owned());
        let member = &mut self.members[index];
        member.state = MemberState::Evicted;
        member.stats.evicted = true;
        let drained = member.queue.len() as u64;
        member.queue.clear();
        member.stats.rejected_evicted += drained;
        member.handle = None;
        // Free the EPC frames for the survivors; failure here means the
        // enclave was already gone (e.g. a failed restore), which is fine.
        let _ = self.os_mut().retire_enclave(eid);
    }

    /// Serve the front request of member `index`'s queue, walking the
    /// escalation ladder on failure.
    fn serve_one(&mut self, index: usize) -> Result<(), FleetError> {
        let (arrival, request) = match self.members[index].queue.pop_front() {
            Some(front) => front,
            None => return Ok(()),
        };
        let mut attempts: u32 = 0;
        loop {
            let (result, elapsed) = self.dispatch(index, &request)?;
            match result {
                Ok(_) => {
                    let now = self.now();
                    let member = &mut self.members[index];
                    member.stats.served += 1;
                    member.stats.latency.record(now.saturating_sub(arrival));
                    member.served_since_snapshot += 1;
                    self.total_served += 1;
                    if let Some(tower) = self.tower.as_mut() {
                        // Feed the tower dispatch *service* time — the
                        // same measure the watchdog judges — so the SLO
                        // burn detector races the watchdog on equal
                        // terms rather than on queue-inflated latency.
                        tower.observe_request(index, elapsed, now);
                    }
                    if elapsed > self.cfg.watchdog_cycles {
                        let eid = self.members[index].stats.eid;
                        self.members[index].watchdog_strikes += 1;
                        self.members[index].stats.watchdog_strikes += 1;
                        self.flight_supervisor(
                            eid,
                            "watchdog",
                            format!(
                                "request took {elapsed} cycles against a budget of {}",
                                self.cfg.watchdog_cycles
                            ),
                        );
                        if self.members[index].watchdog_strikes >= self.cfg.max_watchdog_strikes {
                            self.escalate(index, "repeated watchdog-budget violations")?;
                        }
                    } else if self.cfg.snapshot_every > 0
                        && self.members[index].served_since_snapshot >= self.cfg.snapshot_every
                    {
                        self.checkpoint_member(index)?;
                    }
                    return Ok(());
                }
                Err(err) => {
                    if self.member_terminated(index) {
                        // AttackDetected: no point retrying a terminated
                        // runtime — straight to the restart rung.
                        self.members[index].queue.push_front((arrival, request));
                        return self.escalate(index, "runtime terminated (attack detected)");
                    }
                    if attempts >= self.cfg.max_retries {
                        self.members[index].queue.push_front((arrival, request));
                        return self.escalate(index, "request failed after retry ladder");
                    }
                    attempts += 1;
                    self.members[index].stats.retries += 1;
                    let eid = self.members[index].stats.eid;
                    let backoff = self.cfg.retry_backoff_cycles << (attempts - 1);
                    self.flight_supervisor(
                        eid,
                        "retry",
                        format!("attempt {attempts} after {err}; backoff {backoff} cycles"),
                    );
                    let os = self.os_mut();
                    if os.has_pending_injected_resume() {
                        // The OS suspended the enclave out from under us;
                        // model it bringing the enclave back before the
                        // retry (the syscall-entry hook would otherwise).
                        // A failed resume just leaves the marker pending.
                        let _ = os.resume_injected_suspend();
                    }
                    self.os_mut().machine.clock.charge(backoff);
                }
            }
        }
    }

    /// Take a fresh sealed checkpoint of member `index` (boot, healthy
    /// cadence, and post-restore all funnel through here).
    fn checkpoint_member(&mut self, index: usize) -> Result<(), FleetError> {
        let os = match &self.os {
            Some(os) => os,
            None => return Err(FleetError::Internal("os slot empty in checkpoint")),
        };
        let member = &mut self.members[index];
        let handle = member
            .handle
            .as_ref()
            .ok_or(FleetError::Internal("handle missing in checkpoint"))?;
        let bundle = Self::snapshot_member(os, handle, &mut member.counter)?;
        member.snapshot = Some(bundle);
        member.served_since_snapshot = 0;
        Ok(())
    }

    /// Quarantine → restart → eviction, depending on restart budget.
    fn escalate(&mut self, index: usize, why: &str) -> Result<(), FleetError> {
        if self.members[index].stats.first_failover_cycles == 0 {
            self.members[index].stats.first_failover_cycles = self.now();
        }
        if self.members[index].stats.restarts >= self.cfg.max_restarts {
            self.evict_member(index, why);
            return Ok(());
        }
        match self.restart_member(index, why) {
            Ok(()) => Ok(()),
            Err(FleetError::Snap(e)) => {
                // The checkpoint itself failed to restore (e.g. a staged
                // rollback attack): the member cannot come back.
                let msg = format!("{why}; restore failed: {e}");
                self.evict_member(index, &msg);
                Ok(())
            }
            Err(other) => Err(other),
        }
    }

    /// Ask one member to shrink its resident set to the floor (the
    /// cooperative response to an EPC-skew alert naming it the hog).
    fn shrink_member(&mut self, index: usize, why: &str) -> Result<(), FleetError> {
        let floor = self.cfg.shrink_floor_pages;
        if self.members[index].state != MemberState::Healthy {
            return Ok(());
        }
        let resident = self.members[index]
            .handle
            .as_ref()
            .map(|h| h.rt.resident_pages())
            .unwrap_or(0);
        if resident <= floor {
            return Ok(());
        }
        let os = self
            .os
            .take()
            .ok_or(FleetError::Internal("os slot empty in shrink"))?;
        let member = &mut self.members[index];
        let handle = match member.handle.take() {
            Some(h) => h,
            None => {
                self.os = Some(os);
                return Ok(());
            }
        };
        let mut world = World::join(os, handle);
        let shrink = world.rt.shrink_budget(&mut world.os, floor);
        let (os, handle) = world.split();
        member.handle = Some(handle);
        self.os = Some(os);
        shrink?;
        let eid = self.members[index].stats.eid;
        self.members[index].stats.shrinks += 1;
        self.flight_supervisor(eid, "shrink", why.to_owned());
        Ok(())
    }

    /// One watchtower step: drain fresh flight-ring records into the
    /// detectors, close any elapsed windows, and act on firings. Alerts
    /// land in the flight ring as causal events *before* the resulting
    /// escalation records, so forensics reads detector → supervisor in
    /// order.
    fn watch_tick(&mut self) -> Result<(), FleetError> {
        if self.tower.is_none() {
            return Ok(());
        }
        let now = self.now();
        let cursor = self.flight_cursor;
        let fresh = self.os_mut().flight_records_after(cursor);
        if let Some(last) = fresh.last() {
            self.flight_cursor = last.seq;
        }
        let dropped = self.os_mut().flight_dropped();
        let frames: Vec<u64> = {
            let os = self.os();
            self.members
                .iter()
                .map(|m| os.machine.epc_frames_of(m.stats.eid) as u64)
                .collect()
        };
        let alerts = match self.tower.as_mut() {
            Some(tower) => {
                for r in &fresh {
                    if let FlightEvent::Kernel(Observation::Fault { eid, va, .. }) = &r.event {
                        tower.observe_fault(*eid, va.vpn(), r.cycles);
                    }
                }
                tower.note_ring_dropped(dropped);
                tower.sample_epc(&frames);
                tower.advance(now);
                tower.take_alerts()
            }
            None => Vec::new(),
        };
        for alert in alerts {
            let index = alert.member;
            {
                let os = self.os_mut();
                if os.flight_armed() {
                    let opened = os.flight_begin_chain_if_idle();
                    os.flight_record(alert.to_flight_event());
                    if opened {
                        os.flight_end_chain();
                    }
                }
            }
            if let Some(member) = self.members.get_mut(index) {
                member.stats.watch_alerts += 1;
                if member.stats.first_alert_cycles == 0 {
                    member.stats.first_alert_cycles = alert.cycles;
                }
            }
            let actionable = self
                .members
                .get(index)
                .map(|m| m.state == MemberState::Healthy)
                .unwrap_or(false);
            if actionable {
                if alert.detector == "epc_skew" {
                    let why = format!("watch alert: {} ({})", alert.detector, alert.why);
                    self.shrink_member(index, &why)?;
                } else {
                    let why = format!("watch alert: {} ({})", alert.detector, alert.why);
                    self.escalate(index, &why)?;
                }
            }
            self.alert_history.push(alert);
        }
        Ok(())
    }

    /// Every watchtower alert of the run, in firing order.
    pub fn watch_alerts(&self) -> &[Alert] {
        &self.alert_history
    }

    /// The watchtower (for its telemetry and window accounting), when
    /// one is configured.
    pub fn watchtower(&self) -> Option<&Watchtower> {
        self.tower.as_ref()
    }

    /// Member display names in boot order (trace/alert-log labels).
    pub fn member_names(&self) -> Vec<String> {
        self.members.iter().map(|m| m.stats.name.clone()).collect()
    }

    /// Drive `traffic` (one stream per member, arrival-sorted) to
    /// completion: every offered request ends served or explicitly
    /// rejected. Returns the per-member accounting.
    pub fn run(&mut self, traffic: Vec<Vec<TimedRequest>>) -> Result<Vec<MemberStats>, FleetError> {
        if traffic.len() != self.members.len() {
            return Err(FleetError::Internal("one traffic stream per member"));
        }
        let mut next = vec![0usize; traffic.len()];
        loop {
            // Stage a mid-run fault campaign once the threshold passes.
            if !self.crash_armed {
                if let Some(staged) = self.cfg.staged_crash.clone() {
                    if self.total_served >= staged.after_total_served {
                        let eid = self.member_eid(staged.member);
                        self.os_mut().arm_fault_plan(staged.plan.targeting(eid));
                        self.crash_armed = true;
                    }
                }
            }
            let now = self.now();
            // Admission: accept every due arrival or shed it explicitly.
            for (i, stream) in traffic.iter().enumerate() {
                while next[i] < stream.len() && stream[next[i]].arrival_cycles <= now {
                    let timed = &stream[next[i]];
                    next[i] += 1;
                    let member = &mut self.members[i];
                    member.stats.offered += 1;
                    if member.state == MemberState::Evicted {
                        member.stats.rejected_evicted += 1;
                    } else if member.queue.len() >= self.cfg.queue_cap {
                        member.stats.rejected_queue_full += 1;
                    } else {
                        member
                            .queue
                            .push_back((timed.arrival_cycles, timed.request.clone()));
                    }
                }
            }
            // Deterministic round-robin over members with queued work.
            let n = self.members.len();
            let candidate = (0..n).map(|k| (self.rr_cursor + k) % n).find(|&i| {
                self.members[i].state == MemberState::Healthy && !self.members[i].queue.is_empty()
            });
            match candidate {
                Some(i) => {
                    self.rr_cursor = (i + 1) % n;
                    self.serve_one(i)?;
                    self.watch_tick()?;
                }
                None => {
                    // Idle: fast-forward to the next arrival, or finish.
                    let upcoming = traffic
                        .iter()
                        .enumerate()
                        .filter(|(i, stream)| next[*i] < stream.len())
                        .map(|(i, stream)| stream[next[i]].arrival_cycles)
                        .min();
                    match upcoming {
                        Some(at) => {
                            let now = self.now();
                            if at > now {
                                self.os_mut().machine.clock.charge(at - now);
                            }
                            // Idle gaps still close watch windows (a
                            // member going quiet is itself a signal).
                            self.watch_tick()?;
                        }
                        None => break,
                    }
                }
            }
        }
        // Flush the trailing partial window into the detectors.
        self.watch_tick()?;
        // Record final runtime health into the stats.
        for member in &mut self.members {
            if let Some(h) = member.handle.as_ref() {
                member.stats.fault_count = h.rt.fault_count();
                member.stats.span_profile = SpanKind::ALL
                    .iter()
                    .filter_map(|&kind| {
                        let agg = h.rt.telemetry.span_agg(kind);
                        (agg.count > 0).then(|| SpanProfileLine {
                            kind: kind.name(),
                            count: agg.count,
                            cycles: agg.total_cycles,
                        })
                    })
                    .collect();
            }
            if !member.queue.is_empty() {
                return Err(FleetError::Internal("run ended with queued requests"));
            }
        }
        Ok(self.members.iter().map(|m| m.stats.clone()).collect())
    }

    /// Snapshot of the flight recorder's ring (forensics artifact).
    pub fn flight_log(&mut self) -> Vec<FlightRecord> {
        self.os_mut().flight_snapshot()
    }
}
