//! Per-enclave latency/throughput reporting and the zero-silent-drop
//! accounting check.
//!
//! The supervisor's [`MemberStats`] carry raw counters and an
//! end-to-end latency histogram per member; this module turns them
//! into the p50/p99/p999 report the CI job uploads, and into the
//! accounting verdict the smoke test and property tests gate on:
//! every offered request must end **served or explicitly rejected**.

use autarky_sgx_sim::CLOCK_HZ;

use crate::supervisor::{MemberStats, SpanProfileLine};

/// One member's digested numbers.
#[derive(Debug, Clone)]
pub struct MemberReport {
    /// Member name.
    pub name: String,
    /// Requests offered by the load generator.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests explicitly rejected (queue-full + evicted).
    pub rejected: u64,
    /// Median end-to-end latency, cycles.
    pub p50_cycles: u64,
    /// 99th-percentile end-to-end latency, cycles.
    pub p99_cycles: u64,
    /// 99.9th-percentile end-to-end latency, cycles.
    pub p999_cycles: u64,
    /// Mean end-to-end latency, cycles.
    pub mean_cycles: f64,
    /// Served throughput over the run, requests per simulated second.
    pub throughput_rps: f64,
    /// Snapshot restarts performed.
    pub restarts: u32,
    /// Whether the member ended the run permanently evicted.
    pub evicted: bool,
    /// Whether every restore was byte-identical to its checkpoint.
    pub byte_identical: bool,
    /// Worst detection-to-restored latency over all restarts, cycles.
    pub max_recovery_cycles: u64,
    /// `offered == served + rejected` for this member.
    pub accounted: bool,
    /// Watchtower alerts attributed to this member.
    pub watch_alerts: u64,
    /// First watch alert, simulated cycles (0 = never alerted).
    pub first_alert_cycles: u64,
    /// First failover escalation, simulated cycles (0 = none).
    pub first_failover_cycles: u64,
}

/// The fleet-wide report.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One row per member, in boot order.
    pub members: Vec<MemberReport>,
    /// Wall-clock of the run in simulated cycles.
    pub run_cycles: u64,
    /// Per-span-kind totals summed across all members, sorted by
    /// cycles descending (ties by name) — a coarse fleet-wide view of
    /// where enclave time went, complementing the causal per-workload
    /// profile in `autarky-profile`.
    pub merged_span_profile: Vec<SpanProfileLine>,
}

impl FleetReport {
    /// Digest raw supervisor stats into a report. `run_cycles` is the
    /// simulated duration of the run (for throughput).
    pub fn from_stats(stats: &[MemberStats], run_cycles: u64) -> Self {
        let secs = (run_cycles as f64 / CLOCK_HZ as f64).max(f64::MIN_POSITIVE);
        let members = stats
            .iter()
            .map(|s| {
                let rejected = s.rejected_queue_full + s.rejected_evicted;
                // One quantile implementation for the whole workspace:
                // the histogram's own digest, not a local bucket walk.
                let latency = s.latency.summary();
                MemberReport {
                    name: s.name.clone(),
                    offered: s.offered,
                    served: s.served,
                    rejected,
                    p50_cycles: latency.p50,
                    p99_cycles: latency.p99,
                    p999_cycles: latency.p999,
                    mean_cycles: latency.mean,
                    throughput_rps: s.served as f64 / secs,
                    restarts: s.restarts,
                    evicted: s.evicted,
                    byte_identical: s.byte_identical,
                    max_recovery_cycles: s.max_recovery_cycles,
                    accounted: s.offered == s.served + rejected,
                    watch_alerts: s.watch_alerts,
                    first_alert_cycles: s.first_alert_cycles,
                    first_failover_cycles: s.first_failover_cycles,
                }
            })
            .collect();
        let mut merged_span_profile: Vec<SpanProfileLine> = Vec::new();
        for s in stats {
            for line in &s.span_profile {
                match merged_span_profile.iter_mut().find(|l| l.kind == line.kind) {
                    Some(l) => {
                        l.count += line.count;
                        l.cycles += line.cycles;
                    }
                    None => merged_span_profile.push(line.clone()),
                }
            }
        }
        merged_span_profile.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.kind.cmp(b.kind)));
        Self {
            members,
            run_cycles,
            merged_span_profile,
        }
    }

    /// True iff no member silently dropped a request.
    pub fn all_accounted(&self) -> bool {
        self.members.iter().all(|m| m.accounted)
    }

    /// True iff every restore across the fleet resumed byte-identically.
    pub fn all_byte_identical(&self) -> bool {
        self.members.iter().all(|m| m.byte_identical)
    }

    /// Render the report as a markdown table (the CI artifact).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# Fleet latency report\n\n");
        out.push_str(&format!(
            "run: {} simulated cycles ({:.3} s at {} GHz)\n\n",
            self.run_cycles,
            self.run_cycles as f64 / CLOCK_HZ as f64,
            CLOCK_HZ / 1_000_000_000
        ));
        out.push_str(
            "| member | offered | served | rejected | p50 (cyc) | p99 (cyc) | p999 (cyc) | mean (cyc) | req/s | restarts | evicted | byte-identical | max recovery (cyc) | accounted |\n",
        );
        out.push_str(
            "|--------|--------:|-------:|---------:|----------:|----------:|-----------:|-----------:|------:|---------:|---------|----------------|-------------------:|-----------|\n",
        );
        for m in &self.members {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.0} | {:.1} | {} | {} | {} | {} | {} |\n",
                m.name,
                m.offered,
                m.served,
                m.rejected,
                m.p50_cycles,
                m.p99_cycles,
                m.p999_cycles,
                m.mean_cycles,
                m.throughput_rps,
                m.restarts,
                m.evicted,
                m.byte_identical,
                m.max_recovery_cycles,
                if m.accounted {
                    "yes"
                } else {
                    "NO — SILENT DROP"
                },
            ));
        }
        if self.members.iter().any(|m| m.watch_alerts > 0) {
            out.push_str("\n## Watchtower\n\n");
            out.push_str("| member | alerts | first alert (cyc) | first failover (cyc) | alert led failover |\n");
            out.push_str("|--------|-------:|------------------:|---------------------:|--------------------|\n");
            for m in &self.members {
                let led = if m.first_alert_cycles == 0 {
                    "-"
                } else if m.first_failover_cycles == 0
                    || m.first_alert_cycles <= m.first_failover_cycles
                {
                    "yes"
                } else {
                    "no"
                };
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} |\n",
                    m.name, m.watch_alerts, m.first_alert_cycles, m.first_failover_cycles, led,
                ));
            }
        }
        if !self.merged_span_profile.is_empty() {
            out.push_str("\n## Fleet span profile (all members merged)\n\n");
            out.push_str("| span | count | cycles | mean (cyc) |\n");
            out.push_str("|------|------:|-------:|-----------:|\n");
            for l in &self.merged_span_profile {
                out.push_str(&format!(
                    "| {} | {} | {} | {:.0} |\n",
                    l.kind,
                    l.count,
                    l.cycles,
                    l.cycles as f64 / l.count as f64,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autarky_sgx_sim::EnclaveId;
    use autarky_telemetry::Histogram;

    fn stats(offered: u64, served: u64, rejected: u64) -> MemberStats {
        let mut latency = Histogram::new();
        for i in 0..served {
            latency.record(1000 + i * 10);
        }
        MemberStats {
            name: "kv-a".into(),
            eid: EnclaveId(1),
            offered,
            served,
            rejected_queue_full: rejected,
            rejected_evicted: 0,
            retries: 0,
            watchdog_strikes: 0,
            restarts: 1,
            shrinks: 0,
            evicted: false,
            byte_identical: true,
            max_recovery_cycles: 5000,
            latency,
            fault_count: 0,
            watch_alerts: 1,
            first_alert_cycles: 900,
            first_failover_cycles: 1500,
            span_profile: vec![
                SpanProfileLine {
                    kind: "fault_handler",
                    count: served.max(1),
                    cycles: served.max(1) * 500,
                },
                SpanProfileLine {
                    kind: "ay_fetch_pages",
                    count: served.max(1),
                    cycles: served.max(1) * 120,
                },
            ],
        }
    }

    #[test]
    fn accounting_detects_silent_drops() {
        let good = FleetReport::from_stats(&[stats(100, 90, 10)], 1_000_000);
        assert!(good.all_accounted());
        let bad = FleetReport::from_stats(&[stats(100, 90, 5)], 1_000_000);
        assert!(!bad.all_accounted());
    }

    #[test]
    fn report_renders_quantiles_and_throughput() {
        let report = FleetReport::from_stats(&[stats(100, 100, 0)], CLOCK_HZ);
        let text = report.render();
        assert!(text.contains("kv-a"), "member row present");
        assert!(report.members[0].p50_cycles >= 1000);
        assert!(report.members[0].p99_cycles >= report.members[0].p50_cycles);
        assert!((report.members[0].throughput_rps - 100.0).abs() < 1.0);
    }

    #[test]
    fn span_profiles_merge_across_members_and_render() {
        let report = FleetReport::from_stats(&[stats(100, 100, 0), stats(50, 50, 0)], 1_000_000);
        let fault = report
            .merged_span_profile
            .iter()
            .find(|l| l.kind == "fault_handler")
            .expect("fault_handler line");
        assert_eq!(fault.count, 150, "counts sum across members");
        assert_eq!(fault.cycles, 150 * 500, "cycles sum across members");
        // Sorted by cycles descending: fault_handler (500/op) first.
        assert_eq!(report.merged_span_profile[0].kind, "fault_handler");
        let text = report.render();
        assert!(text.contains("## Fleet span profile"));
        assert!(text.contains("| fault_handler | 150 | 75000 |"));
    }
}
