//! CI smoke scenario: a three-member fleet under bursty load with one
//! staged mid-run enclave crash.
//!
//! Asserts the victim is detected, restored byte-identically from its
//! sealed snapshot within the restart budget, and that no accepted
//! request is silently dropped. Writes two artifacts for CI upload:
//!
//! * `fleet-latency-report.md` — per-member p50/p99/p999 + throughput;
//! * `fleet-forensics.txt` — flight-recorder timeline and the causal
//!   root of the staged attack.
//!
//! ```text
//! cargo run --release -p autarky-fleet --bin fleet_smoke [artifact-dir]
//! ```
//!
//! Exits nonzero on any violated invariant (artifacts are still
//! written first, so a failing CI run uploads the evidence).

use std::path::PathBuf;
use std::process::ExitCode;

use autarky_fleet::{
    kv_stream, spell_stream, Arrivals, Fleet, FleetConfig, FleetReport, LoadConfig, MemberConfig,
    StagedCrash, TimedRequest, WorkloadKind,
};
use autarky_os_sim::flight::{causal_root_of_attack, render_timeline};
use autarky_os_sim::FaultPlan;
use autarky_runtime::RuntimeConfig;

const KV_ITEMS: u64 = 64;
const DICT_WORDS: usize = 600;
const REQUESTS: usize = 150;

fn kv_member(name: &str) -> MemberConfig {
    MemberConfig {
        name: name.into(),
        workload: WorkloadKind::Kv {
            items: KV_ITEMS,
            value_size: 2048,
        },
        heap_pages: 192,
        epc_quota: 0,
        runtime: RuntimeConfig {
            budget: 16,
            ..Default::default()
        },
        pin_kv_metadata: false,
    }
}

fn bursty(seed: u64) -> LoadConfig {
    LoadConfig {
        seed,
        requests: REQUESTS,
        arrivals: Arrivals::Bursty {
            burst_gap_cycles: 20_000,
            burst_len: 25,
            idle_gap_cycles: 30_000_000,
        },
        start_cycles: 1_000,
    }
}

fn traffic() -> Vec<Vec<TimedRequest>> {
    vec![
        kv_stream(bursty(101), KV_ITEMS, 0.2),
        kv_stream(bursty(102), KV_ITEMS, 0.99),
        spell_stream(bursty(103), "en", DICT_WORDS, 12),
    ]
}

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/fleet-artifacts"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "fleet_smoke: cannot create artifact dir {}: {e}",
            dir.display()
        );
        return ExitCode::FAILURE;
    }

    let cfg = FleetConfig {
        epc_frames: 2048,
        members: vec![
            kv_member("kv-a"),
            kv_member("kv-b"),
            MemberConfig {
                name: "spell-a".into(),
                workload: WorkloadKind::Spell {
                    dict_words: DICT_WORDS,
                },
                heap_pages: 256,
                epc_quota: 0,
                runtime: RuntimeConfig {
                    budget: 24,
                    ..Default::default()
                },
                pin_kv_metadata: false,
            },
        ],
        queue_cap: 64,
        watchdog_cycles: 50_000_000,
        restart_budget_cycles: 500_000_000,
        restart_cost_cycles: 5_000_000,
        max_retries: 3,
        retry_backoff_cycles: 100_000,
        max_watchdog_strikes: 1,
        max_restarts: 3,
        snapshot_every: 32,
        epc_reserve_frames: 32,
        shrink_floor_pages: 16,
        flight_capacity: 1 << 18,
        // The staged crash: after 25 served requests fleet-wide, the OS
        // spuriously evicts pinned pages of kv-a until a touch of a
        // victim page surfaces as an unexpected fault on a
        // supposedly-resident page — AttackDetected — and the
        // supervisor must fail over to the sealed snapshot (disarming
        // the plan, which ends the staged window).
        staged_crash: Some(StagedCrash {
            after_total_served: 25,
            member: 0,
            plan: FaultPlan {
                spurious_evict: 1.0,
                max_injections: None,
                ..FaultPlan::quiescent(424242)
            },
        }),
        watch: None,
    };

    let mut fleet = match Fleet::new(cfg) {
        Ok(fleet) => fleet,
        Err(e) => {
            eprintln!("fleet_smoke: boot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match fleet.run(traffic()) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("fleet_smoke: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = FleetReport::from_stats(&stats, fleet.now());

    // Artifacts first: a failing gate must still upload its evidence.
    let report_path = dir.join("fleet-latency-report.md");
    if let Err(e) = std::fs::write(&report_path, report.render()) {
        eprintln!("fleet_smoke: cannot write {}: {e}", report_path.display());
        return ExitCode::FAILURE;
    }
    let records = fleet.flight_log();
    let mut forensics = render_timeline(&records, 60);
    forensics.push('\n');
    let causal_root = causal_root_of_attack(&records);
    match causal_root {
        Some((attack, injection)) => {
            forensics.push_str(&format!(
                "causal root of staged attack:\n  verdict:   {}\n  caused by: {}\n",
                attack.event.describe(),
                injection.event.describe()
            ));
        }
        None => forensics.push_str("causal root of staged attack: none found\n"),
    }
    let forensics_path = dir.join("fleet-forensics.txt");
    if let Err(e) = std::fs::write(&forensics_path, &forensics) {
        eprintln!(
            "fleet_smoke: cannot write {}: {e}",
            forensics_path.display()
        );
        return ExitCode::FAILURE;
    }

    print!("{}", report.render());
    println!("\nartifacts: {}", dir.display());

    // The gate.
    let mut failures = Vec::new();
    if !report.all_accounted() {
        failures.push("a request was silently dropped".to_owned());
    }
    if !report.all_byte_identical() {
        failures.push("a restore diverged from its sealed checkpoint".to_owned());
    }
    if stats[0].restarts < 1 {
        failures.push(format!(
            "staged crash did not trigger a failover (restarts={})",
            stats[0].restarts
        ));
    }
    if stats[0].evicted {
        failures.push("victim was evicted instead of recovered".to_owned());
    }
    for s in &stats[1..] {
        if s.restarts != 0 {
            failures.push(format!("{} restarted despite not being targeted", s.name));
        }
    }
    if stats[0].max_recovery_cycles > 500_000_000 {
        failures.push(format!(
            "recovery exceeded the restart budget ({} cycles)",
            stats[0].max_recovery_cycles
        ));
    }
    if causal_root.is_none() {
        failures.push("forensics could not name the attack's causal root".to_owned());
    }
    if failures.is_empty() {
        println!(
            "fleet_smoke: OK — crash detected, snapshot failover byte-identical, zero silent drops"
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("fleet_smoke: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}
