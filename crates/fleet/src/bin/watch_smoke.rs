//! CI watchtower scenario: a staged `SpuriousEvict`-plus-delay storm
//! against one kvstore member, built so the runtime's own tripwires
//! never fire — the storm's only in-band endings are the watchdog
//! (slow, three strikes of budget overrun) or the watchtower (fast,
//! one SLO-burn window). The watchtower must beat the watchdog: its
//! alert has to land (and the supervisor escalate) strictly before the
//! unwatched run's watchdog-driven failover, and forensics must trace
//! the alert back to an injected fault of the staged campaign.
//!
//! Scenario physics, so the race is honest:
//!
//! * The victim's bucket array is pinned OS-managed (the paper's
//!   Memcached patch: only item pages self-page), so the injector's
//!   lowest-resident-page victim is always a *cold* item page.
//! * The victim's stream cycles keys `0..COLD_KEYS` ascending over
//!   more pages than its paging budget, so every request faults once
//!   (steady detector baseline) and a spuriously evicted page is never
//!   re-touched before the storm resolves — no `AttackDetected`.
//! * The storm's delay component makes each stormed request blow the
//!   watchdog budget, so the unwatched baseline fails over by strikes
//!   while the watched run's SLO-burn detector fires a window earlier.
//!
//! Runs the scenario three times: watched twice (artifact
//! byte-identity) and unwatched once (the timeout-driven baseline the
//! alert must beat). Writes three artifacts for CI upload:
//!
//! * `watch-alerts.log` — the deterministic alert log;
//! * `merged-trace.json` — the unified Chrome-trace-event timeline
//!   (load it at `ui.perfetto.dev`);
//! * `watch-report.md` — the fleet report plus the alert-vs-watchdog
//!   timing comparison.
//!
//! ```text
//! cargo run --release -p autarky-fleet --bin watch_smoke [artifact-dir]
//! ```
//!
//! Exits nonzero on any violated invariant (artifacts are still
//! written first, so a failing CI run uploads the evidence).

use std::path::PathBuf;
use std::process::ExitCode;

use autarky_fleet::{
    kv_stream, spell_stream, Arrivals, Fleet, FleetConfig, FleetReport, LoadConfig, MemberConfig,
    MemberStats, StagedCrash, TimedRequest, WatchConfig, WorkloadKind,
};
use autarky_os_sim::flight::causal_root_of_attack;
use autarky_os_sim::{FaultPlan, FlightEvent, FlightRecord, Observation};
use autarky_runtime::RuntimeConfig;
use autarky_watch::{export_trace, render_alert_log, Alert};
use autarky_workloads::request::Request;

const KV_ITEMS: u64 = 64;
/// Keys the victim's stream cycles through, ascending. At two items a
/// page this spans 24 item pages against a 16-page budget, so the FIFO
/// always misses: one fault per request, and the oldest (lowest) pages
/// — the injector's victims — go untouched for a full cycle.
const COLD_KEYS: u64 = 48;
const DICT_WORDS: usize = 600;
const REQUESTS: usize = 150;

// Arrival shape shared by all three streams.
const BURST_GAP_CYCLES: u64 = 20_000;
const BURST_LEN: usize = 25;
const IDLE_GAP_CYCLES: u64 = 30_000_000;
const START_CYCLES: u64 = 1_000;

/// Storm shape: delays are the limp (each stormed request overruns the
/// 2M-cycle watchdog budget), spurious evicts are the probe.
const STORM_DELAY_CYCLES: u64 = 1_500_000;

fn kv_member(name: &str) -> MemberConfig {
    MemberConfig {
        name: name.into(),
        workload: WorkloadKind::Kv {
            items: KV_ITEMS,
            value_size: 2048,
        },
        heap_pages: 192,
        epc_quota: 0,
        runtime: RuntimeConfig {
            budget: 16,
            ..Default::default()
        },
        // Keep the hot bucket array out of the self-paging set so a
        // spurious evict always lands on a cold item page.
        pin_kv_metadata: true,
    }
}

fn bursty(seed: u64) -> LoadConfig {
    LoadConfig {
        seed,
        requests: REQUESTS,
        arrivals: Arrivals::Bursty {
            burst_gap_cycles: BURST_GAP_CYCLES,
            burst_len: BURST_LEN as u32,
            idle_gap_cycles: IDLE_GAP_CYCLES,
        },
        start_cycles: START_CYCLES,
    }
}

/// The victim's stream: GETs cycling `0..COLD_KEYS` ascending, on the
/// same bursty arrival grid as the other members. Deterministic by
/// construction (no RNG draw at all).
fn victim_stream() -> Vec<TimedRequest> {
    let mut at = START_CYCLES;
    let mut out = Vec::with_capacity(REQUESTS);
    for i in 0..REQUESTS {
        out.push(TimedRequest {
            arrival_cycles: at,
            request: Request::Get {
                key: (i as u64) % COLD_KEYS,
            },
        });
        at += if (i + 1) % BURST_LEN == 0 {
            IDLE_GAP_CYCLES
        } else {
            BURST_GAP_CYCLES
        };
    }
    out
}

fn traffic() -> Vec<Vec<TimedRequest>> {
    vec![
        victim_stream(),
        kv_stream(bursty(102), KV_ITEMS, 0.99),
        spell_stream(bursty(103), "en", DICT_WORDS, 12),
    ]
}

fn watch_config() -> WatchConfig {
    WatchConfig {
        // Windows much shorter than the 30M-cycle burst cadence, so
        // the storm is resolved within one burst.
        epoch_cycles: 1_000_000,
        warmup_windows: 8,
        // This scenario belongs to the SLO-burn detector: it judges
        // dispatch service time, the watchdog's own measure, so the
        // race is on equal terms. The CUSUM detectors are exercised by
        // the watch unit/property tests instead.
        fault_h_milli: 0,
        entropy_h_milli: 0,
        // Healthy kv dispatches run well under the budget; a stormed
        // request (≥ one injected 1.5M-cycle delay) blows it.
        p99_budget_cycles: 1_600_000,
        // One bad completion in a window is enough evidence: one
        // window must beat three watchdog strikes.
        min_window_requests: 1,
        ..Default::default()
    }
}

fn scenario(watch: Option<WatchConfig>) -> FleetConfig {
    FleetConfig {
        epc_frames: 2048,
        members: vec![
            kv_member("kv-a"),
            kv_member("kv-b"),
            MemberConfig {
                name: "spell-a".into(),
                workload: WorkloadKind::Spell {
                    dict_words: DICT_WORDS,
                },
                heap_pages: 256,
                epc_quota: 0,
                runtime: RuntimeConfig {
                    budget: 24,
                    ..Default::default()
                },
                pin_kv_metadata: false,
            },
        ],
        queue_cap: 64,
        watchdog_cycles: 2_000_000,
        restart_budget_cycles: 500_000_000,
        restart_cost_cycles: 5_000_000,
        max_retries: 3,
        retry_backoff_cycles: 100_000,
        max_watchdog_strikes: 3,
        max_restarts: 3,
        snapshot_every: 32,
        epc_reserve_frames: 32,
        shrink_floor_pages: 16,
        flight_capacity: 1 << 18,
        // The storm arms as the first burst (75 requests fleet-wide)
        // finishes draining, so the detectors complete their warmup on
        // healthy traffic and the storm lands on the burst's tail.
        staged_crash: Some(StagedCrash {
            after_total_served: 70,
            member: 0,
            plan: FaultPlan {
                spurious_evict: 0.2,
                delay: 0.75,
                delay_cycles: STORM_DELAY_CYCLES,
                max_injections: None,
                ..FaultPlan::quiescent(424242)
            },
        }),
        watch,
    }
}

struct RunOutput {
    stats: Vec<MemberStats>,
    alerts: Vec<Alert>,
    records: Vec<FlightRecord>,
    report: FleetReport,
    member_names: Vec<String>,
}

fn run_scenario(watch: Option<WatchConfig>) -> Result<RunOutput, String> {
    let mut fleet = Fleet::new(scenario(watch)).map_err(|e| format!("boot failed: {e}"))?;
    let stats = fleet
        .run(traffic())
        .map_err(|e| format!("run failed: {e}"))?;
    let report = FleetReport::from_stats(&stats, fleet.now());
    Ok(RunOutput {
        alerts: fleet.watch_alerts().to_vec(),
        records: fleet.flight_log(),
        member_names: fleet.member_names(),
        stats,
        report,
    })
}

fn count_attacks(records: &[FlightRecord]) -> usize {
    records
        .iter()
        .filter(|r| matches!(r.event, FlightEvent::AttackDetected { .. }))
        .count()
}

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/watch-artifacts"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "watch_smoke: cannot create artifact dir {}: {e}",
            dir.display()
        );
        return ExitCode::FAILURE;
    }

    // Watched twice (byte-identity), unwatched once (the baseline).
    let watched = match run_scenario(Some(watch_config())) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("watch_smoke: watched {e}");
            return ExitCode::FAILURE;
        }
    };
    let rerun = match run_scenario(Some(watch_config())) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("watch_smoke: watched rerun {e}");
            return ExitCode::FAILURE;
        }
    };
    let unwatched = match run_scenario(None) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("watch_smoke: unwatched {e}");
            return ExitCode::FAILURE;
        }
    };

    let members: Vec<_> = watched
        .stats
        .iter()
        .map(|s| (s.eid, s.name.clone()))
        .collect();
    let alert_log = render_alert_log(&watched.alerts, &watched.member_names);
    let alert_log_rerun = render_alert_log(&rerun.alerts, &rerun.member_names);
    let trace = export_trace(&watched.records, &members);
    let trace_rerun = export_trace(&rerun.records, &members);

    let first_alert = watched.stats[0].first_alert_cycles;
    let watched_failover = watched.stats[0].first_failover_cycles;
    let unwatched_failover = unwatched.stats[0].first_failover_cycles;

    let mut report_md = watched.report.render();
    report_md.push_str("\n## Alert vs. watchdog timing\n\n");
    report_md.push_str(&format!(
        "- watched: first alert at cycle {first_alert}, failover at cycle {watched_failover}\n"
    ));
    report_md.push_str(&format!(
        "- unwatched baseline: watchdog-driven failover at cycle {unwatched_failover} \
         after {} strikes\n",
        unwatched.stats[0].watchdog_strikes
    ));
    if first_alert > 0 && unwatched_failover > first_alert {
        report_md.push_str(&format!(
            "- the alert led the watchdog by {} cycles\n",
            unwatched_failover - first_alert
        ));
    }

    // Artifacts first: a failing gate must still upload its evidence.
    for (name, contents) in [
        ("watch-alerts.log", &alert_log),
        ("merged-trace.json", &trace),
        ("watch-report.md", &report_md),
    ] {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("watch_smoke: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    print!("{report_md}");
    println!("\nartifacts: {}", dir.display());

    // The gate.
    let mut failures = Vec::new();
    if !watched.report.all_accounted() || !unwatched.report.all_accounted() {
        failures.push("a request was silently dropped".to_owned());
    }
    if !watched.report.all_byte_identical() {
        failures.push("a restore diverged from its sealed checkpoint".to_owned());
    }
    if watched.stats[0].watch_alerts == 0 {
        failures.push("the staged storm never tripped a watch alert".to_owned());
    }
    if watched.stats[0].evicted {
        failures.push("victim was evicted instead of recovered".to_owned());
    }
    for s in &watched.stats[1..] {
        if s.restarts != 0 {
            failures.push(format!("{} restarted despite not being targeted", s.name));
        }
    }
    // The storm must never trip the runtime's own tripwire: the race is
    // watchdog vs. watchtower, and an AttackDetected would end it early.
    for (label, out) in [("watched", &watched), ("unwatched", &unwatched)] {
        let attacks = count_attacks(&out.records);
        if attacks != 0 {
            failures.push(format!(
                "{label} run tripped AttackDetected {attacks} time(s); the storm must stay \
                 below the runtime's own tripwire"
            ));
        }
    }
    if unwatched_failover == 0 {
        failures.push("unwatched baseline never failed over (no watchdog comparison)".to_owned());
    } else if unwatched.stats[0].watchdog_strikes < 3 {
        failures.push(format!(
            "unwatched failover was not watchdog-driven (only {} strikes)",
            unwatched.stats[0].watchdog_strikes
        ));
    } else if first_alert == 0 || first_alert >= unwatched_failover {
        failures.push(format!(
            "alert did not beat the watchdog (alert at {first_alert}, watchdog failover at {unwatched_failover})"
        ));
    }
    match causal_root_of_attack(&watched.records) {
        Some((verdict, root)) => {
            if !matches!(verdict.event, FlightEvent::WatchAlert { .. }) {
                failures.push(format!(
                    "forensics verdict is not the watch alert: {}",
                    verdict.event.describe()
                ));
            }
            if !matches!(
                root.event,
                FlightEvent::Kernel(Observation::FaultInjected { .. })
            ) {
                failures.push(format!(
                    "causal root is not an injected fault: {}",
                    root.event.describe()
                ));
            }
        }
        None => failures.push("forensics could not name the alert's causal root".to_owned()),
    }
    if alert_log != alert_log_rerun {
        failures.push("alert log not byte-identical across reruns".to_owned());
    }
    if trace != trace_rerun {
        failures.push("merged trace not byte-identical across reruns".to_owned());
    }

    if failures.is_empty() {
        println!(
            "watch_smoke: OK — alert beat the watchdog, causal root named, artifacts byte-identical"
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("watch_smoke: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}
