//! Multi-enclave fleet supervisor over one shared (simulated) EPC.
//!
//! Autarky's §6 extends self-paging to multi-process hosts: several
//! enclaves share one machine's EPC, each self-paging against its own
//! budget. This crate builds the missing management layer for that
//! regime:
//!
//! * [`loadgen`] — seeded open-loop load generation (Poisson/bursty
//!   arrivals, Zipfian key skew) in simulated cycles;
//! * [`supervisor`] — N fleet members behind a deterministic
//!   round-robin scheduler, with per-enclave health checks, an
//!   escalation ladder (retry → quarantine → sealed-snapshot restart →
//!   permanent eviction), admission control that sheds load with
//!   explicit rejections, and cooperative shrink-before-kill
//!   degradation under EPC pressure;
//! * [`report`] — per-enclave p50/p99/p999 latency + throughput
//!   digest and the zero-silent-drop accounting verdict.
//!
//! Everything is deterministic: a scenario is a pure function of its
//! [`FleetConfig`] and load seeds, so failover behavior is replayable
//! and supervisor decisions land in the flight recorder as causal
//! events ([`autarky_os_sim::FlightEvent::Supervisor`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod loadgen;
pub mod report;
pub mod supervisor;

pub use autarky_telemetry::LatencySummary;
pub use autarky_watch::{export_trace, render_alert_log, Alert, WatchConfig, Watchtower};
pub use autarky_workloads::request::Request;
pub use loadgen::{kv_stream, spell_stream, Arrivals, LoadConfig, TimedRequest};
pub use report::{FleetReport, MemberReport};
pub use supervisor::{
    Fleet, FleetConfig, FleetError, MemberConfig, MemberState, MemberStats, RejectReason,
    SpanProfileLine, StagedCrash, WorkloadKind,
};
