//! Seeded open-loop load generation in simulated cycles.
//!
//! Open-loop means arrival times are fixed up front, independent of how
//! fast the fleet serves: a slow or wedged enclave builds queue depth
//! (and eventually sheds load) instead of silently slowing the offered
//! rate, which is the regime where admission control and failover are
//! actually exercised. Two arrival processes are modeled:
//!
//! * **Poisson** — exponential inter-arrival times around a mean, the
//!   classic memoryless client population;
//! * **Bursty** — alternating burst/idle phases with deterministic
//!   spacing inside a burst, the pathological shape for queue bounds.
//!
//! Key skew for kvstore traffic reuses the YCSB generator
//! ([`KeyGenerator`]); spell traffic chunks a synthesized text. All
//! randomness flows from one seed, so a scenario is a pure function of
//! its configuration.

use autarky_prng::SimRng;
use autarky_workloads::request::Request;
use autarky_workloads::spell::synth_text;
use autarky_workloads::ycsb::{Distribution, KeyGenerator};

/// The arrival process shaping request timing.
#[derive(Debug, Clone, Copy)]
pub enum Arrivals {
    /// Exponential inter-arrival times with this mean, in cycles.
    Poisson {
        /// Mean inter-arrival gap in simulated cycles.
        mean_gap_cycles: u64,
    },
    /// Bursts of closely spaced requests separated by idle gaps.
    Bursty {
        /// Gap between requests inside a burst, in cycles.
        burst_gap_cycles: u64,
        /// Requests per burst.
        burst_len: u32,
        /// Idle gap between bursts, in cycles.
        idle_gap_cycles: u64,
    },
}

/// One request stamped with its (open-loop) arrival time.
#[derive(Debug, Clone)]
pub struct TimedRequest {
    /// Simulated-cycle timestamp at which the request arrives.
    pub arrival_cycles: u64,
    /// The request itself.
    pub request: Request,
}

/// Configuration for one member's request stream.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// RNG seed (arrival jitter and key skew).
    pub seed: u64,
    /// Total requests to generate.
    pub requests: usize,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Cycle timestamp of the first arrival.
    pub start_cycles: u64,
}

fn arrival_times(cfg: &LoadConfig, rng: &mut SimRng) -> Vec<u64> {
    let mut at = cfg.start_cycles;
    let mut times = Vec::with_capacity(cfg.requests);
    match cfg.arrivals {
        Arrivals::Poisson { mean_gap_cycles } => {
            for _ in 0..cfg.requests {
                times.push(at);
                // Inverse-CDF exponential sample; 1-u keeps ln's argument
                // nonzero. Gaps are floored at one cycle so arrival order
                // is strict.
                let u = rng.gen_f64();
                let gap = (-(1.0 - u).ln() * mean_gap_cycles as f64) as u64;
                at += gap.max(1);
            }
        }
        Arrivals::Bursty {
            burst_gap_cycles,
            burst_len,
            idle_gap_cycles,
        } => {
            let burst_len = burst_len.max(1) as usize;
            for i in 0..cfg.requests {
                times.push(at);
                at += if (i + 1) % burst_len == 0 {
                    idle_gap_cycles.max(1)
                } else {
                    burst_gap_cycles.max(1)
                };
            }
        }
    }
    times
}

/// A GET-only kvstore stream over `items` preloaded keys with Zipfian
/// skew `theta` (read-only traffic keeps the host-side service index
/// static, which is what makes a mid-run snapshot restart resumable).
pub fn kv_stream(cfg: LoadConfig, items: u64, theta: f64) -> Vec<TimedRequest> {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let mut keys = KeyGenerator::new(items, Distribution::Zipfian { theta }, cfg.seed ^ 0x5eed);
    arrival_times(&cfg, &mut rng)
        .into_iter()
        .map(|arrival_cycles| TimedRequest {
            arrival_cycles,
            request: Request::Get {
                key: keys.next_key(),
            },
        })
        .collect()
}

/// A spell-check stream against one dictionary: each request checks
/// `words_per_request` synthesized words (dictionary reads only).
pub fn spell_stream(
    cfg: LoadConfig,
    lang: &str,
    dict_words: usize,
    words_per_request: usize,
) -> Vec<TimedRequest> {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let words_per_request = words_per_request.max(1);
    let text = synth_text(
        lang,
        dict_words,
        cfg.requests * words_per_request,
        cfg.seed ^ 0x7e97,
    );
    arrival_times(&cfg, &mut rng)
        .into_iter()
        .enumerate()
        .map(|(i, arrival_cycles)| TimedRequest {
            arrival_cycles,
            request: Request::Check {
                lang: lang.to_owned(),
                text: text[i * words_per_request..(i + 1) * words_per_request].to_vec(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(arrivals: Arrivals) -> LoadConfig {
        LoadConfig {
            seed: 42,
            requests: 200,
            arrivals,
            start_cycles: 1000,
        }
    }

    #[test]
    fn poisson_stream_is_seeded_and_monotonic() {
        let a = kv_stream(
            cfg(Arrivals::Poisson {
                mean_gap_cycles: 50_000,
            }),
            64,
            0.99,
        );
        let b = kv_stream(
            cfg(Arrivals::Poisson {
                mean_gap_cycles: 50_000,
            }),
            64,
            0.99,
        );
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_cycles, y.arrival_cycles, "same seed, same times");
            assert_eq!(x.request, y.request, "same seed, same keys");
        }
        assert!(a
            .windows(2)
            .all(|w| w[0].arrival_cycles < w[1].arrival_cycles));
    }

    #[test]
    fn bursty_stream_alternates_phases() {
        let s = kv_stream(
            cfg(Arrivals::Bursty {
                burst_gap_cycles: 10,
                burst_len: 5,
                idle_gap_cycles: 1_000_000,
            }),
            64,
            0.99,
        );
        // Gap after the 5th request of each burst is the idle gap.
        assert_eq!(s[5].arrival_cycles - s[4].arrival_cycles, 1_000_000);
        assert_eq!(s[1].arrival_cycles - s[0].arrival_cycles, 10);
    }

    #[test]
    fn zipfian_keys_are_skewed() {
        let s = kv_stream(
            cfg(Arrivals::Poisson {
                mean_gap_cycles: 1000,
            }),
            1024,
            0.99,
        );
        // The generator scrambles hot items across the keyspace, so
        // measure skew by the modal key's share: uniform over 1024 keys
        // would give each key ~0.2 of 200 draws; zipf(0.99) concentrates.
        let mut freq = std::collections::HashMap::new();
        for t in &s {
            if let Request::Get { key } = t.request {
                *freq.entry(key).or_insert(0u64) += 1;
            }
        }
        let modal = freq.values().copied().max().unwrap_or(0);
        assert!(
            modal >= 10,
            "zipf(0.99) concentrates on a hot key, modal share {modal}/200"
        );
    }

    #[test]
    fn spell_stream_chunks_text() {
        let s = spell_stream(
            cfg(Arrivals::Poisson {
                mean_gap_cycles: 1000,
            }),
            "en",
            300,
            8,
        );
        assert_eq!(s.len(), 200);
        assert!(s.iter().all(
            |t| matches!(&t.request, Request::Check { lang, text } if lang == "en" && text.len() == 8)
        ));
    }
}
