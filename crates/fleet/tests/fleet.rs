//! Fleet supervisor integration tests: failover, admission control,
//! degradation, and the seeded replacement property.

use autarky_fleet::{
    kv_stream, Arrivals, Fleet, FleetConfig, FleetReport, LoadConfig, MemberConfig, StagedCrash,
    TimedRequest, WorkloadKind,
};
use autarky_os_sim::{FaultPlan, FlightEvent};
use autarky_runtime::RuntimeConfig;

const ITEMS: u64 = 64;

fn kv_member(name: &str, budget: usize) -> MemberConfig {
    MemberConfig {
        name: name.into(),
        workload: WorkloadKind::Kv {
            items: ITEMS,
            // Two items per page: enough item pages that a small budget
            // keeps the member faulting (and thus injectable) all run.
            value_size: 2048,
        },
        heap_pages: 192,
        epc_quota: 0,
        runtime: RuntimeConfig {
            budget,
            ..Default::default()
        },
        pin_kv_metadata: false,
    }
}

fn fleet_cfg(members: Vec<MemberConfig>) -> FleetConfig {
    FleetConfig {
        epc_frames: 2048,
        members,
        queue_cap: 256,
        watchdog_cycles: 20_000_000,
        restart_budget_cycles: 500_000_000,
        restart_cost_cycles: 5_000_000,
        max_retries: 3,
        retry_backoff_cycles: 100_000,
        // One egregious overrun is enough: injected stalls can land
        // multiple syscall delays inside a single request, so a strike
        // threshold > 1 could let a wedge hide inside one serve call.
        max_watchdog_strikes: 1,
        max_restarts: 3,
        snapshot_every: 32,
        epc_reserve_frames: 0,
        shrink_floor_pages: 16,
        // Large enough that early supervisor events survive the
        // thousands of paging records a full run appends after them.
        flight_capacity: 1 << 18,
        staged_crash: None,
        watch: None,
    }
}

fn kv_traffic(seed: u64, requests: usize) -> Vec<TimedRequest> {
    kv_stream(
        LoadConfig {
            seed,
            requests,
            arrivals: Arrivals::Poisson {
                mean_gap_cycles: 300_000,
            },
            start_cycles: 1_000,
        },
        ITEMS,
        // Near-uniform skew keeps the working set larger than the
        // budget, so fetch syscalls (the injection surface) never dry up.
        0.2,
    )
}

/// A plan whose single injection corrupts a sealed backing blob at the
/// next fetch. The MAC failure surfaces as a (persistent) OS error, so
/// this exercises the *retry ladder*: every retry re-reads the same
/// corrupted blob, the ladder exhausts, and the member is restarted.
fn corruption_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        corrupt_backing: 1.0,
        max_injections: Some(1),
        ..FaultPlan::quiescent(seed)
    }
}

/// A plan that spuriously evicts pinned pages behind the runtime's
/// back: the next touch of a victim page is an unexpected fault on a
/// supposedly-resident page, which trips `AttackDetected` and
/// terminates the enclave (the paper's controlled-channel response).
fn attack_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        spurious_evict: 1.0,
        // Unbounded: a capped burst can evaporate without detection
        // when the runtime's own eviction policy (which also prefers
        // cold pages) reclaims every ghost page before it is touched.
        // Continuous eviction drains the believed-resident set until a
        // touch MUST land on a ghost; the supervisor disarms the plan
        // at the first failover, so exactly one incarnation is hit.
        max_injections: None,
        ..FaultPlan::quiescent(seed)
    }
}

/// A plan that wedges the member: each injection stalls one syscall far
/// past the per-request watchdog budget.
fn wedge_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        delay: 1.0,
        delay_cycles: 100_000_000,
        max_injections: Some(2),
        ..FaultPlan::quiescent(seed)
    }
}

#[test]
fn healthy_fleet_serves_every_request() {
    let cfg = fleet_cfg(vec![kv_member("kv-a", 24), kv_member("kv-b", 24)]);
    let mut fleet = Fleet::new(cfg).expect("fleet boots");
    let stats = fleet
        .run(vec![kv_traffic(1, 80), kv_traffic(2, 80)])
        .expect("run");
    let report = FleetReport::from_stats(&stats, fleet.now());
    assert!(report.all_accounted(), "no silent drops");
    for s in &stats {
        assert_eq!(s.offered, 80);
        assert_eq!(s.served, 80, "{}: healthy member serves everything", s.name);
        assert_eq!(s.restarts, 0);
        assert!(!s.evicted);
        assert!(s.latency.count() == 80);
    }
}

#[test]
fn staged_corruption_restarts_victim_byte_identically() {
    let mut cfg = fleet_cfg(vec![kv_member("kv-a", 16), kv_member("kv-b", 16)]);
    cfg.staged_crash = Some(StagedCrash {
        after_total_served: 10,
        member: 0,
        plan: corruption_plan(77),
    });
    let mut fleet = Fleet::new(cfg).expect("fleet boots");
    let stats = fleet
        .run(vec![kv_traffic(3, 100), kv_traffic(4, 100)])
        .expect("run");
    let report = FleetReport::from_stats(&stats, fleet.now());
    assert!(report.all_accounted(), "no silent drops");
    assert!(report.all_byte_identical(), "restores are byte-identical");
    assert!(
        stats[0].restarts >= 1,
        "the attacked member was restarted (restarts={})",
        stats[0].restarts
    );
    assert_eq!(stats[1].restarts, 0, "the neighbor was not disturbed");
    assert_eq!(stats[0].served, 100, "victim caught up after failover");
    assert_eq!(stats[1].served, 100);
    assert!(
        stats[0].max_recovery_cycles <= 500_000_000,
        "recovery within budget, took {}",
        stats[0].max_recovery_cycles
    );

    // Forensics: the flight recorder names the restart and its cause.
    let eid = fleet.member_eid(0);
    let records = fleet.flight_log();
    let restart = records.iter().find_map(|r| match &r.event {
        FlightEvent::Supervisor {
            eid: e,
            action,
            why,
        } if *e == eid && action == "restart" => Some(why.clone()),
        _ => None,
    });
    let why = restart.expect("supervisor restart event recorded");
    assert!(
        why.contains("byte-identical: true"),
        "restart event records the byte-identical verdict: {why}"
    );
}

#[test]
fn attack_detected_member_fails_over() {
    let mut cfg = fleet_cfg(vec![kv_member("kv-a", 16), kv_member("kv-b", 16)]);
    cfg.staged_crash = Some(StagedCrash {
        after_total_served: 10,
        member: 0,
        plan: attack_plan(55),
    });
    let mut fleet = Fleet::new(cfg).expect("fleet boots");
    let stats = fleet
        .run(vec![kv_traffic(15, 100), kv_traffic(16, 100)])
        .expect("run");
    let report = FleetReport::from_stats(&stats, fleet.now());
    assert!(report.all_accounted());
    assert!(report.all_byte_identical());
    assert!(stats[0].restarts >= 1, "terminated member was replaced");
    assert!(!stats[0].evicted);
    assert_eq!(stats[0].served, 100, "victim caught up after failover");

    // The supervisor's quarantine decision names the termination cause.
    let eid = fleet.member_eid(0);
    let records = fleet.flight_log();
    assert!(
        records.iter().any(|r| matches!(
            &r.event,
            FlightEvent::Supervisor { eid: e, action, why }
                if *e == eid && action == "quarantine" && why.contains("attack detected")
        )),
        "quarantine event records the attack-detected cause"
    );
}

#[test]
fn wedged_member_trips_watchdog_and_restarts() {
    let mut cfg = fleet_cfg(vec![kv_member("kv-a", 16), kv_member("kv-b", 16)]);
    cfg.staged_crash = Some(StagedCrash {
        after_total_served: 8,
        member: 0,
        plan: wedge_plan(5),
    });
    let mut fleet = Fleet::new(cfg).expect("fleet boots");
    let stats = fleet
        .run(vec![kv_traffic(5, 100), kv_traffic(6, 100)])
        .expect("run");
    let report = FleetReport::from_stats(&stats, fleet.now());
    assert!(report.all_accounted());
    assert!(
        stats[0].watchdog_strikes >= 1,
        "stalled requests strike the watchdog (strikes={})",
        stats[0].watchdog_strikes
    );
    assert!(stats[0].restarts >= 1, "strikes escalate to a restart");
    assert!(report.all_byte_identical());
    assert_eq!(stats[0].served, 100, "wedged member still serves its queue");
}

#[test]
fn queue_overflow_sheds_load_explicitly() {
    let mut cfg = fleet_cfg(vec![kv_member("kv-a", 24)]);
    cfg.queue_cap = 4;
    let traffic = kv_stream(
        LoadConfig {
            seed: 9,
            requests: 120,
            arrivals: Arrivals::Bursty {
                burst_gap_cycles: 10,
                burst_len: 40,
                idle_gap_cycles: 50_000_000,
            },
            start_cycles: 1_000,
        },
        ITEMS,
        0.2,
    );
    let mut fleet = Fleet::new(cfg).expect("fleet boots");
    let stats = fleet.run(vec![traffic]).expect("run");
    let report = FleetReport::from_stats(&stats, fleet.now());
    assert!(report.all_accounted(), "sheds are explicit rejections");
    assert!(
        stats[0].rejected_queue_full > 0,
        "a 40-deep burst against a 4-slot queue must shed"
    );
    assert_eq!(
        stats[0].offered,
        stats[0].served + stats[0].rejected_queue_full,
        "offered = served + shed"
    );
}

#[test]
fn exhausted_restart_budget_evicts_and_rejects_remainder() {
    let mut cfg = fleet_cfg(vec![kv_member("kv-a", 16), kv_member("kv-b", 16)]);
    cfg.max_restarts = 0; // first failure is fatal
    cfg.staged_crash = Some(StagedCrash {
        after_total_served: 6,
        member: 0,
        plan: corruption_plan(21),
    });
    let mut fleet = Fleet::new(cfg).expect("fleet boots");
    let stats = fleet
        .run(vec![kv_traffic(7, 80), kv_traffic(8, 80)])
        .expect("run");
    let report = FleetReport::from_stats(&stats, fleet.now());
    assert!(report.all_accounted(), "eviction never drops silently");
    assert!(stats[0].evicted, "zero restart budget means eviction");
    assert!(
        stats[0].rejected_evicted > 0,
        "requests after eviction are explicitly rejected"
    );
    assert_eq!(stats[1].served, 80, "the survivor is unaffected");
    assert!(!stats[1].evicted);
}

/// Satellite 3 — the replacement property, over 100 seeds: a wedged or
/// `AttackDetected` member is always replaced within its restart budget,
/// the replacement resumes byte-identically from its snapshot, and no
/// accepted request is silently dropped.
#[test]
fn property_replacement_within_budget_over_seeds() {
    for seed in 0..100u64 {
        // Rotate through the three failure modes: AttackDetected
        // termination, a wedge past the watchdog budget, and a
        // persistent fetch failure that exhausts the retry ladder.
        let plan = match seed % 3 {
            0 => attack_plan(seed),
            1 => wedge_plan(seed),
            _ => corruption_plan(seed),
        };
        let wedge = seed % 3 == 1;
        let mut cfg = fleet_cfg(vec![kv_member("kv-a", 16), kv_member("kv-b", 16)]);
        // The property under test is replacement, not eviction: give the
        // ladder headroom for every injection to cause its own restart.
        cfg.max_restarts = 10;
        cfg.staged_crash = Some(StagedCrash {
            after_total_served: 4 + seed % 7,
            member: (seed % 2) as usize,
            plan,
        });
        let victim = (seed % 2) as usize;
        let mut fleet = Fleet::new(cfg).expect("fleet boots");
        let stats = fleet
            .run(vec![
                kv_traffic(seed.wrapping_mul(31).wrapping_add(1), 60),
                kv_traffic(seed.wrapping_mul(37).wrapping_add(2), 60),
            ])
            .expect("run");
        let report = FleetReport::from_stats(&stats, fleet.now());
        assert!(report.all_accounted(), "seed {seed}: silent drop");
        assert!(
            report.all_byte_identical(),
            "seed {seed}: restore diverged from checkpoint"
        );
        assert!(
            stats[victim].restarts >= 1,
            "seed {seed}: victim was never replaced (wedge={wedge})"
        );
        assert!(
            stats[victim].max_recovery_cycles <= 500_000_000,
            "seed {seed}: recovery took {} cycles",
            stats[victim].max_recovery_cycles
        );
        assert!(!stats[victim].evicted, "seed {seed}: replacement succeeded");
        assert_eq!(
            stats[1 - victim].restarts,
            0,
            "seed {seed}: the targeted plan must not touch the neighbor"
        );
        for s in &stats {
            assert_eq!(
                s.offered,
                s.served + s.rejected_queue_full + s.rejected_evicted,
                "seed {seed}: {} accounting",
                s.name
            );
        }
    }
}

/// Degradation order: when free EPC is below the configured reserve at
/// restart time, healthy members are shrunk (cooperative `ay_shrink`)
/// before the victim is torn down — and keep serving afterwards.
#[test]
fn restart_shrinks_healthy_neighbors_first() {
    let mut cfg = fleet_cfg(vec![kv_member("kv-a", 32), kv_member("kv-b", 32)]);
    // A reserve no fleet this size can satisfy forces the degradation
    // path on every restart.
    cfg.epc_reserve_frames = cfg.epc_frames;
    cfg.shrink_floor_pages = 8;
    cfg.staged_crash = Some(StagedCrash {
        after_total_served: 10,
        member: 0,
        plan: corruption_plan(33),
    });
    let mut fleet = Fleet::new(cfg).expect("fleet boots");
    let stats = fleet
        .run(vec![kv_traffic(13, 80), kv_traffic(14, 80)])
        .expect("run");
    let report = FleetReport::from_stats(&stats, fleet.now());
    assert!(report.all_accounted());
    assert!(stats[0].restarts >= 1, "victim restarted");
    assert!(
        stats[1].shrinks >= 1,
        "the healthy neighbor was asked to shrink before the kill"
    );
    assert_eq!(stats[1].served, 80, "shrunk neighbor keeps serving");
    assert!(report.all_byte_identical());
}

/// Satellite 4 — EPC contention fairness: under sustained two-enclave
/// pressure (per-enclave quotas tighter than the working sets) neither
/// member is starved, and their legitimate fault rates stay within a
/// bounded ratio of each other.
#[test]
fn epc_contention_is_fair_between_members() {
    let mut a = kv_member("kv-a", 0);
    let mut b = kv_member("kv-b", 0);
    // No self-imposed budget; pressure comes from the OS-side quota, so
    // both members lean on the ballooning/shrink path under contention.
    a.epc_quota = 40;
    b.epc_quota = 40;
    let cfg = fleet_cfg(vec![a, b]);
    let mut fleet = Fleet::new(cfg).expect("fleet boots under quota");
    let stats = fleet
        .run(vec![kv_traffic(11, 120), kv_traffic(12, 120)])
        .expect("run");
    let report = FleetReport::from_stats(&stats, fleet.now());
    assert!(report.all_accounted());
    for s in &stats {
        assert!(
            s.served >= s.offered * 8 / 10,
            "{} starved: served {}/{}",
            s.name,
            s.served,
            s.offered
        );
        assert!(
            s.fault_count > 0,
            "{} must actually page under quota pressure",
            s.name
        );
    }
    let (fa, fb) = (stats[0].fault_count, stats[1].fault_count);
    let (hi, lo) = (fa.max(fb), fa.min(fb).max(1));
    assert!(
        hi / lo <= 8,
        "fault-rate ratio {fa}:{fb} exceeds the fairness bound"
    );
}
