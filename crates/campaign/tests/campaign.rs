//! Campaign integration and property tests.
//!
//! Two properties anchor the subsystem:
//!
//! 1. **Expansion** — a suite expands to exactly the product of its
//!    consumed axes, with content-addressed IDs that are stable across
//!    re-expansions and distinct across axis values.
//! 2. **Resume** — a campaign killed mid-run (journal cut to an
//!    arbitrary prefix, tail line torn mid-write) re-runs only the
//!    missing cells and produces a report byte-identical to the
//!    uninterrupted run, at any `--jobs` level.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use autarky_campaign::{
    execute_cell, run_cells, CampaignConfig, CampaignReport, CellOutcome, CellSpec, GateOutcome,
    Journal,
};

/// A deterministic fake executor: outcome derived from the spec alone,
/// so reports are comparable across runs without real subsystem cost.
fn fake_execute(spec: &CellSpec) -> CellOutcome {
    CellOutcome {
        gate: if spec.seed == Some(13) {
            GateOutcome::Fail
        } else {
            GateOutcome::Pass
        },
        metrics: vec![("derived_seed".to_owned(), spec.derived_seed() as f64)],
        reason: format!("fake outcome for {}", spec.coords()),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ay-campaign-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const SWEEP: &str = r#"
[campaign]
name = "it-sweep"

[matrix]
seed = [1, 2, 3]

[[suite]]
kind = "bench"
workload = ["paging", "spell", "kvstore", "font"]

[[suite]]
kind = "leakage"
policy = ["baseline", "clusters", "cached-oram"]
workload = ["jpeg", "spell"]

[[suite]]
kind = "replay"
policy = ["clusters", "rate-limit"]
workload = ["spell", "kvstore"]
fault_plan = ["quiet", "transient"]

[[suite]]
kind = "fleet"
workload = ["kvstore", "mixed"]
traffic_shape = ["steady", "bursty"]
fault_plan = ["quiet"]
enclave_size = [128, 192]

[[suite]]
kind = "profile"
policy = ["clusters", "elided"]
workload = ["paging", "spell"]

[[suite]]
kind = "figure"
workload = ["fig5"]
policy = ["sgx1", "sgx2"]
"#;

/// Consumed-axis products: bench 4 (seed unconsumed), leakage 3×2,
/// replay 2×2×2×3, fleet 2×2×1×2×3, profile 2×2, figure 1×2.
const SWEEP_CELLS: usize = 4 + 6 + 24 + 24 + 4 + 2;

#[test]
fn expansion_matches_the_axis_product_with_stable_distinct_ids() {
    let config = CampaignConfig::from_toml(SWEEP).expect("parses");
    let cells = config.expand();
    assert_eq!(cells.len(), SWEEP_CELLS);

    let ids: BTreeSet<&str> = cells.iter().map(|c| c.id.as_str()).collect();
    assert_eq!(ids.len(), cells.len(), "content addresses are distinct");

    // Re-expansion (fresh parse included) reproduces the same IDs in
    // the same order: the address depends only on cell content.
    let again = CampaignConfig::from_toml(SWEEP).expect("parses").expand();
    let id_pairs: Vec<(&str, &str)> = cells
        .iter()
        .zip(&again)
        .map(|(a, b)| (a.id.as_str(), b.id.as_str()))
        .collect();
    assert!(id_pairs.iter().all(|(a, b)| a == b), "IDs are stable");
}

#[test]
fn report_is_independent_of_parallelism() {
    let cells = CampaignConfig::from_toml(SWEEP).expect("parses").expand();
    let reports: Vec<String> = [1usize, 4, 16]
        .into_iter()
        .map(|jobs| {
            let mut journal = Journal::ephemeral();
            let runs = run_cells(&cells, jobs, &mut journal, &fake_execute, true);
            CampaignReport {
                name: "it-sweep".into(),
                runs,
            }
            .to_json()
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[1], reports[2]);
}

#[test]
fn resume_after_a_torn_journal_skips_done_cells_and_reproduces_the_report() {
    let cells = CampaignConfig::from_toml(SWEEP).expect("parses").expand();
    let dir = temp_dir("resume");
    let full_path = dir.join("full.log");

    // Uninterrupted reference run.
    let reference = {
        let mut journal = Journal::open(&full_path).expect("opens");
        let runs = run_cells(&cells, 4, &mut journal, &fake_execute, true);
        CampaignReport {
            name: "it-sweep".into(),
            runs,
        }
        .to_json()
    };

    let full_text = std::fs::read_to_string(&full_path).expect("journal readable");
    let lines: Vec<&str> = full_text.lines().collect();
    assert_eq!(lines.len(), SWEEP_CELLS + 1, "header + one line per cell");

    // Kill the campaign at several points: keep `k` completed lines,
    // then tear the next line in half as an in-flight append would.
    for keep in [0usize, 1, SWEEP_CELLS / 3, SWEEP_CELLS - 1] {
        let torn_path = dir.join(format!("torn-{keep}.log"));
        let mut torn = lines[..=keep].join("\n");
        torn.push('\n');
        let half = lines[keep + 1];
        torn.push_str(&half[..half.len() / 2]);
        std::fs::write(&torn_path, &torn).expect("write torn journal");

        let executed = AtomicUsize::new(0);
        let counting = |spec: &CellSpec| {
            executed.fetch_add(1, Ordering::Relaxed);
            fake_execute(spec)
        };
        let mut journal = Journal::open(&torn_path).expect("opens torn journal");
        assert_eq!(journal.len(), keep, "torn tail line must not count");
        let runs = run_cells(&cells, 4, &mut journal, &counting, true);

        assert_eq!(
            executed.load(Ordering::Relaxed),
            SWEEP_CELLS - keep,
            "only unjournaled cells re-run (keep={keep})"
        );
        assert_eq!(
            runs.iter().filter(|r| r.resumed).count(),
            keep,
            "journaled cells are resumed (keep={keep})"
        );
        let report = CampaignReport {
            name: "it-sweep".into(),
            runs,
        }
        .to_json();
        assert_eq!(
            report, reference,
            "resumed report byte-identical (keep={keep})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn real_cells_of_every_kind_run_and_gate() {
    let config = CampaignConfig::from_toml(
        r#"
[campaign]
name = "it-real"

[[suite]]
kind = "bench"
workload = "spell"

[[suite]]
kind = "leakage"
policy = "baseline"
workload = "jpeg"

[[suite]]
kind = "replay"
policy = "clusters"
workload = "spell"
fault_plan = "quiet"
seed = 1

[[suite]]
kind = "fleet"
workload = "kvstore"
traffic_shape = "steady"
fault_plan = "quiet"
enclave_size = 192
requests = 30
seed = 1

[[suite]]
kind = "profile"
policy = "clusters"
workload = "spell"

[[suite]]
kind = "figure"
workload = "fig5"
policy = "sgx1"

[[suite]]
kind = "watch"
workload = "kvstore"
fault_plan = "quiet"
requests = 50
seed = 1
"#,
    )
    .expect("parses");
    let cells = config.expand();
    assert_eq!(cells.len(), 7);
    let mut journal = Journal::ephemeral();
    let runs = run_cells(&cells, 2, &mut journal, &execute_cell, true);
    let report = CampaignReport {
        name: config.name.clone(),
        runs,
    };
    // Bench has no baseline configured → info; the other six gate pass.
    assert!(report.pass(), "markdown:\n{}", report.to_markdown());
    assert_eq!(report.failed(), 0);
    assert_eq!(report.info(), 1);
    assert_eq!(report.passed(), 6);
    let json = report.to_json();
    assert!(json.contains("\"campaign\": \"it-real\""));
    assert!(json.contains("\"pass\": true"));
}

#[test]
fn real_profile_and_figure_cells_are_parallelism_invariant() {
    // Unlike the fake-executor sweep above, this runs the *real*
    // profiler: the collected profile (and thus every journaled metric)
    // must be bit-identical no matter how cells are scheduled.
    let config = CampaignConfig::from_toml(
        r#"
[campaign]
name = "it-profile-jobs"

[[suite]]
kind = "profile"
policy = ["clusters", "single"]
workload = "spell"

[[suite]]
kind = "figure"
workload = "fig5"
policy = "sgx1"
"#,
    )
    .expect("parses");
    let cells = config.expand();
    assert_eq!(cells.len(), 3);
    let reports: Vec<String> = [1usize, 2]
        .into_iter()
        .map(|jobs| {
            let mut journal = Journal::ephemeral();
            let runs = run_cells(&cells, jobs, &mut journal, &execute_cell, true);
            CampaignReport {
                name: config.name.clone(),
                runs,
            }
            .to_json()
        })
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "profile metrics depend on jobs level"
    );
    assert!(reports[0].contains("hot_path_cycles_per_fault"));
}
