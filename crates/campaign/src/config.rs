//! Campaign configuration: the declarative TOML matrix and its
//! expansion into content-addressed cells.
//!
//! A config has three layers:
//!
//! * `[campaign]` — the name (which also names the default output
//!   directory);
//! * `[matrix]` — the shared axis vocabulary: `policy`, `workload`,
//!   `enclave_size`, `fault_plan`, `traffic_shape`, `seed`;
//! * `[[suite]]` — one experiment kind each (`bench`, `leakage`,
//!   `replay`, `fleet`, `profile`, `figure`), inheriting the matrix
//!   axes unless overridden, plus the kind's gate parameters.
//!
//! Each kind consumes only the axes that can change its outcome (a
//! bench cell has no policy; a leakage cell folds the seed axis into
//! its own per-class sampling), and expansion is the cartesian product
//! of the consumed axes. Axis values are validated against the wrapped
//! subsystem's vocabulary at load time — a typo is a config error, not
//! a silently skipped cell.

use std::fmt;

use crate::cell::{CellKind, CellSpec, SuiteParams};
use crate::toml::{self, Table};

/// Valid fault-plan names for replay cells (deterministically
/// replayable injection campaigns).
pub const REPLAY_FAULT_PLANS: [&str; 3] = ["quiet", "transient", "hostile"];
/// Valid fault-plan names for fleet cells (`staged-evict` is the
/// supervisor's staged mid-run crash).
pub const FLEET_FAULT_PLANS: [&str; 3] = ["quiet", "transient", "staged-evict"];
/// Valid traffic shapes for fleet load generation.
pub const TRAFFIC_SHAPES: [&str; 3] = ["steady", "poisson", "bursty"];
/// Valid fleet member mixes.
pub const FLEET_WORKLOADS: [&str; 3] = ["kvstore", "spell", "mixed"];
/// Valid fault-plan names for watch cells: `quiet` is the
/// false-positive baseline (zero alerts allowed by default), `storm`
/// the staged delay-plus-spurious-evict campaign the watchtower must
/// catch before the watchdog does.
pub const WATCH_FAULT_PLANS: [&str; 2] = ["quiet", "storm"];
/// Valid member mixes for watch cells (the victim is always the first
/// member, a kvstore).
pub const WATCH_WORKLOADS: [&str; 2] = ["kvstore", "mixed"];
/// Valid figure names for figure cells (the workload axis carries the
/// figure, the policy axis the paging mechanism).
pub const FIGURE_NAMES: [&str; 1] = ["fig5"];
/// Valid paging-mechanism tags for figure cells.
pub const FIGURE_MECHANISMS: [&str; 2] = ["sgx1", "sgx2"];

/// A config-level failure (parse or validation).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<toml::TomlError> for ConfigError {
    fn from(e: toml::TomlError) -> Self {
        ConfigError(e.to_string())
    }
}

/// The six matrix axes, after defaulting and inheritance.
#[derive(Debug, Clone, PartialEq)]
pub struct Axes {
    /// Protection policies.
    pub policy: Vec<String>,
    /// Workloads.
    pub workload: Vec<String>,
    /// Enclave heap sizing in pages.
    pub enclave_size: Vec<u64>,
    /// Named fault plans.
    pub fault_plan: Vec<String>,
    /// Traffic shapes.
    pub traffic_shape: Vec<String>,
    /// Seeds.
    pub seed: Vec<u64>,
}

impl Default for Axes {
    fn default() -> Self {
        Self {
            policy: vec!["clusters".into()],
            workload: vec!["spell".into()],
            enclave_size: vec![192],
            fault_plan: vec!["quiet".into()],
            traffic_shape: vec!["bursty".into()],
            seed: vec![1],
        }
    }
}

impl Axes {
    /// Overlay any axis present in `table` onto `self`.
    fn overlay(&mut self, table: &Table) -> Result<(), ConfigError> {
        let need = |key: &str| ConfigError(format!("axis `{key}` must be a non-empty list"));
        for key in ["policy", "workload", "fault_plan", "traffic_shape"] {
            if table.has(key) {
                let values = table.get_strs(key).ok_or_else(|| need(key))?;
                if values.is_empty() {
                    return Err(need(key));
                }
                match key {
                    "policy" => self.policy = values,
                    "workload" => self.workload = values,
                    "fault_plan" => self.fault_plan = values,
                    _ => self.traffic_shape = values,
                }
            }
        }
        for key in ["enclave_size", "seed"] {
            if table.has(key) {
                let values = table.get_u64s(key).ok_or_else(|| need(key))?;
                if values.is_empty() {
                    return Err(need(key));
                }
                match key {
                    "enclave_size" => self.enclave_size = values,
                    _ => self.seed = values,
                }
            }
        }
        Ok(())
    }
}

/// One `[[suite]]`: a kind, its (inherited + overridden) axes, and its
/// gate parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    /// Experiment kind.
    pub kind: CellKind,
    /// Axes after inheritance.
    pub axes: Axes,
    /// Gate parameters.
    pub params: SuiteParams,
}

impl Suite {
    /// How many cells this suite expands to (the product of the axes
    /// its kind consumes).
    pub fn cell_count(&self) -> usize {
        let a = &self.axes;
        match self.kind {
            CellKind::Bench => a.workload.len(),
            CellKind::Leakage => a.policy.len() * a.workload.len(),
            CellKind::Replay => {
                a.policy.len() * a.workload.len() * a.fault_plan.len() * a.seed.len()
            }
            CellKind::Fleet => {
                a.workload.len()
                    * a.traffic_shape.len()
                    * a.fault_plan.len()
                    * a.enclave_size.len()
                    * a.seed.len()
            }
            CellKind::Profile | CellKind::Figure => a.policy.len() * a.workload.len(),
            CellKind::Watch => a.workload.len() * a.fault_plan.len() * a.seed.len(),
        }
    }

    /// Expand this suite into cell specs (product order: the axis
    /// nesting above, outermost first).
    pub fn expand(&self) -> Vec<CellSpec> {
        let a = &self.axes;
        let mut cells = Vec::with_capacity(self.cell_count());
        match self.kind {
            CellKind::Bench => {
                for workload in &a.workload {
                    cells.push(CellSpec::new(
                        self.kind,
                        None,
                        workload.clone(),
                        None,
                        None,
                        None,
                        None,
                        self.params.clone(),
                    ));
                }
            }
            CellKind::Leakage => {
                for policy in &a.policy {
                    for workload in &a.workload {
                        cells.push(CellSpec::new(
                            self.kind,
                            Some(policy.clone()),
                            workload.clone(),
                            None,
                            None,
                            None,
                            None,
                            self.params.clone(),
                        ));
                    }
                }
            }
            CellKind::Replay => {
                for policy in &a.policy {
                    for workload in &a.workload {
                        for fault_plan in &a.fault_plan {
                            for &seed in &a.seed {
                                cells.push(CellSpec::new(
                                    self.kind,
                                    Some(policy.clone()),
                                    workload.clone(),
                                    None,
                                    Some(fault_plan.clone()),
                                    None,
                                    Some(seed),
                                    self.params.clone(),
                                ));
                            }
                        }
                    }
                }
            }
            CellKind::Fleet => {
                for workload in &a.workload {
                    for traffic_shape in &a.traffic_shape {
                        for fault_plan in &a.fault_plan {
                            for &enclave_size in &a.enclave_size {
                                for &seed in &a.seed {
                                    cells.push(CellSpec::new(
                                        self.kind,
                                        None,
                                        workload.clone(),
                                        Some(enclave_size),
                                        Some(fault_plan.clone()),
                                        Some(traffic_shape.clone()),
                                        Some(seed),
                                        self.params.clone(),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            CellKind::Profile | CellKind::Figure => {
                for policy in &a.policy {
                    for workload in &a.workload {
                        cells.push(CellSpec::new(
                            self.kind,
                            Some(policy.clone()),
                            workload.clone(),
                            None,
                            None,
                            None,
                            None,
                            self.params.clone(),
                        ));
                    }
                }
            }
            CellKind::Watch => {
                for workload in &a.workload {
                    for fault_plan in &a.fault_plan {
                        for &seed in &a.seed {
                            cells.push(CellSpec::new(
                                self.kind,
                                None,
                                workload.clone(),
                                None,
                                Some(fault_plan.clone()),
                                None,
                                Some(seed),
                                self.params.clone(),
                            ));
                        }
                    }
                }
            }
        }
        cells
    }

    fn validate(&self) -> Result<(), ConfigError> {
        let kind = self.kind.name();
        let check = |axis: &str, values: &[String], vocab: &[&str]| -> Result<(), ConfigError> {
            for v in values {
                if !vocab.contains(&v.as_str()) {
                    return Err(ConfigError(format!(
                        "{kind} suite: unknown {axis} {v:?} (valid: {})",
                        vocab.join(", ")
                    )));
                }
            }
            Ok(())
        };
        match self.kind {
            CellKind::Bench => {
                check(
                    "workload",
                    &self.axes.workload,
                    &autarky_bench::perf::WORKLOAD_NAMES,
                )?;
                if self.params.scale == 0 {
                    return Err(ConfigError("bench suite: scale must be ≥ 1".into()));
                }
            }
            CellKind::Leakage => {
                check(
                    "policy",
                    &self.axes.policy,
                    &autarky_leakage::policy_names(),
                )?;
                check(
                    "workload",
                    &self.axes.workload,
                    &autarky_leakage::workload_names(),
                )?;
                if self.params.samples < 2 {
                    return Err(ConfigError(
                        "leakage suite: samples must be ≥ 2 (per secret class)".into(),
                    ));
                }
            }
            CellKind::Replay => {
                for p in &self.axes.policy {
                    if autarky_flightrec::SchedulePolicy::from_name(p).is_none() {
                        return Err(ConfigError(format!(
                            "replay suite: unknown policy {p:?} (valid: clusters, rate-limit, \
                             cached-oram)"
                        )));
                    }
                }
                for w in &self.axes.workload {
                    if autarky_flightrec::ScheduleWorkload::from_name(w).is_none() {
                        return Err(ConfigError(format!(
                            "replay suite: unknown workload {w:?} (valid: jpeg, font, spell, \
                             kvstore)"
                        )));
                    }
                }
                check("fault_plan", &self.axes.fault_plan, &REPLAY_FAULT_PLANS)?;
            }
            CellKind::Fleet => {
                check("workload", &self.axes.workload, &FLEET_WORKLOADS)?;
                check("traffic_shape", &self.axes.traffic_shape, &TRAFFIC_SHAPES)?;
                check("fault_plan", &self.axes.fault_plan, &FLEET_FAULT_PLANS)?;
                if self.params.requests == 0 {
                    return Err(ConfigError("fleet suite: requests must be ≥ 1".into()));
                }
                for &size in &self.axes.enclave_size {
                    if !(32..=4096).contains(&size) {
                        return Err(ConfigError(format!(
                            "fleet suite: enclave_size {size} out of range (32..=4096 heap pages)"
                        )));
                    }
                }
            }
            CellKind::Profile => {
                check(
                    "policy",
                    &self.axes.policy,
                    &autarky_profile::PROFILE_POLICIES,
                )?;
                check(
                    "workload",
                    &self.axes.workload,
                    &autarky_profile::PROFILE_WORKLOADS,
                )?;
                if self.params.scale == 0 {
                    return Err(ConfigError("profile suite: scale must be ≥ 1".into()));
                }
                if !self.params.residual_max_pct.is_finite() || self.params.residual_max_pct < 0.0 {
                    return Err(ConfigError(
                        "profile suite: residual_max_pct must be a non-negative number".into(),
                    ));
                }
            }
            CellKind::Figure => {
                check("workload", &self.axes.workload, &FIGURE_NAMES)?;
                check("policy", &self.axes.policy, &FIGURE_MECHANISMS)?;
                if self.params.scale == 0 {
                    return Err(ConfigError("figure suite: scale must be ≥ 1".into()));
                }
            }
            CellKind::Watch => {
                check("workload", &self.axes.workload, &WATCH_WORKLOADS)?;
                check("fault_plan", &self.axes.fault_plan, &WATCH_FAULT_PLANS)?;
                // The storm is staged on the tail of the first traffic
                // burst; a stream shorter than two bursts never reaches
                // it (burst length is fixed by the scenario).
                if self.params.requests < 50 {
                    return Err(ConfigError(
                        "watch suite: requests must be ≥ 50 (two traffic bursts)".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A parsed, validated campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Campaign name (also the default output directory leaf).
    pub name: String,
    /// The suites, in file order.
    pub suites: Vec<Suite>,
}

impl CampaignConfig {
    /// Parse and validate a TOML config.
    pub fn from_toml(input: &str) -> Result<Self, ConfigError> {
        let doc = toml::parse(input)?;
        let campaign = doc
            .table("campaign")
            .ok_or_else(|| ConfigError("missing [campaign] section".into()))?;
        let name = campaign
            .get_str("name")
            .ok_or_else(|| ConfigError("[campaign] needs a string `name`".into()))?
            .to_owned();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(ConfigError(format!(
                "campaign name {name:?} must be non-empty [a-zA-Z0-9_-]"
            )));
        }

        let mut matrix_axes = Axes::default();
        if let Some(matrix) = doc.table("matrix") {
            matrix_axes.overlay(matrix)?;
        }

        let suite_tables = doc.array_tables("suite");
        if suite_tables.is_empty() {
            return Err(ConfigError("config declares no [[suite]]".into()));
        }
        let mut suites = Vec::with_capacity(suite_tables.len());
        for (i, table) in suite_tables.iter().enumerate() {
            let kind_tag = table
                .get_str("kind")
                .ok_or_else(|| ConfigError(format!("suite #{}: missing `kind`", i + 1)))?;
            let kind = CellKind::from_name(kind_tag).ok_or_else(|| {
                ConfigError(format!(
                    "suite #{}: unknown kind {kind_tag:?} (valid: bench, leakage, replay, \
                     fleet, profile, figure, watch)",
                    i + 1
                ))
            })?;
            let mut axes = matrix_axes.clone();
            axes.overlay(table)?;
            let params = parse_params(table, SuiteParams::default())?;
            let suite = Suite { kind, axes, params };
            suite.validate()?;
            suites.push(suite);
        }
        Ok(Self { name, suites })
    }

    /// Expand every suite, deduplicating by content address (two suites
    /// that describe the same cell share one execution and one report
    /// row). Order is suite order, then each suite's product order.
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells: Vec<CellSpec> = Vec::new();
        for suite in &self.suites {
            for cell in suite.expand() {
                if !cells.iter().any(|c| c.id == cell.id) {
                    cells.push(cell);
                }
            }
        }
        cells
    }
}

fn parse_params(table: &Table, mut params: SuiteParams) -> Result<SuiteParams, ConfigError> {
    let bad = |key: &str, what: &str| ConfigError(format!("suite key `{key}` must be {what}"));
    if table.has("scale") {
        params.scale = table
            .get_i64("scale")
            .filter(|v| (1..=u32::MAX as i64).contains(v))
            .ok_or_else(|| bad("scale", "a positive integer"))? as u32;
    }
    if table.has("baseline") {
        params.baseline = Some(
            table
                .get_str("baseline")
                .ok_or_else(|| bad("baseline", "a path string"))?
                .to_owned(),
        );
    }
    if table.has("max_growth_pct") {
        params.max_growth_pct = table
            .get_f64("max_growth_pct")
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| bad("max_growth_pct", "a non-negative number"))?;
    }
    if table.has("samples") {
        params.samples = table
            .get_i64("samples")
            .filter(|v| *v >= 0)
            .ok_or_else(|| bad("samples", "a non-negative integer"))?
            as usize;
    }
    if table.has("baseline_min_mi") {
        params.baseline_min_mi = table
            .get_f64("baseline_min_mi")
            .filter(|v| v.is_finite())
            .ok_or_else(|| bad("baseline_min_mi", "a number"))?;
    }
    if table.has("oram_max_mi") {
        params.oram_max_mi = table
            .get_f64("oram_max_mi")
            .filter(|v| v.is_finite())
            .ok_or_else(|| bad("oram_max_mi", "a number"))?;
    }
    if table.has("secret") {
        params.secret = table
            .get_i64("secret")
            .filter(|v| (0..=1).contains(v))
            .ok_or_else(|| bad("secret", "0 or 1"))? as u32;
    }
    if table.has("requests") {
        params.requests = table
            .get_i64("requests")
            .filter(|v| *v >= 0)
            .ok_or_else(|| bad("requests", "a non-negative integer"))?
            as usize;
    }
    if table.has("epc_frames") {
        params.epc_frames = table
            .get_i64("epc_frames")
            .filter(|v| (64..=1 << 20).contains(v))
            .ok_or_else(|| bad("epc_frames", "an integer in 64..=1048576"))?
            as usize;
    }
    if table.has("residual_max_pct") {
        params.residual_max_pct = table
            .get_f64("residual_max_pct")
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| bad("residual_max_pct", "a non-negative number"))?;
    }
    if table.has("min_alerts") {
        params.min_alerts = table
            .get_i64("min_alerts")
            .filter(|v| *v >= 0)
            .ok_or_else(|| bad("min_alerts", "a non-negative integer"))?
            as u64;
    }
    if table.has("max_false_alerts") {
        params.max_false_alerts = table
            .get_i64("max_false_alerts")
            .filter(|v| *v >= 0)
            .ok_or_else(|| bad("max_false_alerts", "a non-negative integer"))?
            as u64;
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = r#"
[campaign]
name = "unit-smoke"

[matrix]
policy = ["clusters", "cached-oram"]
workload = ["spell", "kvstore"]
fault_plan = ["quiet", "transient"]
seed = [1, 2]

[[suite]]
kind = "replay"

[[suite]]
kind = "bench"
workload = ["font", "paging"]
baseline = "baselines/bench-v1.json"

[[suite]]
kind = "leakage"
policy = ["baseline"]
workload = ["spell"]
samples = 2
"#;

    #[test]
    fn expansion_is_the_product_of_consumed_axes() {
        let config = CampaignConfig::from_toml(SMOKE).expect("parses");
        assert_eq!(config.suites.len(), 3);
        // replay: 2 policies × 2 workloads × 2 plans × 2 seeds.
        assert_eq!(config.suites[0].cell_count(), 16);
        // bench: 2 workloads.
        assert_eq!(config.suites[1].cell_count(), 2);
        // leakage: 1 policy × 1 workload.
        assert_eq!(config.suites[2].cell_count(), 1);
        let cells = config.expand();
        assert_eq!(cells.len(), 16 + 2 + 1);
    }

    #[test]
    fn duplicate_cells_across_suites_collapse() {
        let config = CampaignConfig::from_toml(
            r#"
[campaign]
name = "dup"
[[suite]]
kind = "bench"
workload = ["font"]
[[suite]]
kind = "bench"
workload = ["font", "paging"]
"#,
        )
        .expect("parses");
        let cells = config.expand();
        assert_eq!(cells.len(), 2, "font is shared, paging unique");
    }

    #[test]
    fn vocabulary_is_validated_per_kind() {
        for (snippet, needle) in [
            (
                "[[suite]]\nkind = \"replay\"\npolicy = [\"baseline\"]",
                "policy",
            ),
            (
                "[[suite]]\nkind = \"bench\"\nworkload = [\"jpeg\"]",
                "workload",
            ),
            (
                "[[suite]]\nkind = \"fleet\"\ntraffic_shape = [\"ddos\"]",
                "traffic_shape",
            ),
            (
                "[[suite]]\nkind = \"fleet\"\nfault_plan = [\"hostile\"]",
                "fault_plan",
            ),
            ("[[suite]]\nkind = \"leakage\"\nsamples = 1", "samples"),
            ("[[suite]]\nkind = \"nope\"", "kind"),
        ] {
            let toml = format!("[campaign]\nname = \"v\"\n{snippet}\n");
            let err = CampaignConfig::from_toml(&toml).expect_err(snippet);
            assert!(err.0.contains(needle), "{snippet}: {err}");
        }
    }

    #[test]
    fn suite_axes_inherit_then_override() {
        let config = CampaignConfig::from_toml(SMOKE).expect("parses");
        assert_eq!(config.suites[0].axes.policy.len(), 2, "inherited");
        assert_eq!(config.suites[2].axes.policy, vec!["baseline"], "overridden");
        assert_eq!(
            config.suites[2].axes.workload,
            vec!["spell"],
            "overridden workload"
        );
    }
}
