//! The campaign report: one JSON document plus one markdown summary
//! covering every cell.
//!
//! The report is a pure function of the cell specs and their journaled
//! outcomes — no wall-clock, no hostnames, no resumed-vs-fresh marks —
//! so a campaign interrupted and resumed produces a report
//! byte-identical to an uninterrupted run (the resume property test
//! pins this).

use crate::cell::{json_f64, GateOutcome};
use crate::runner::CellRun;

/// A finished campaign, ready to render.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name from the config.
    pub name: String,
    /// Every cell, in expansion order.
    pub runs: Vec<CellRun>,
}

impl CampaignReport {
    /// Cells whose gate passed.
    pub fn passed(&self) -> usize {
        self.count(GateOutcome::Pass)
    }

    /// Cells whose gate failed.
    pub fn failed(&self) -> usize {
        self.count(GateOutcome::Fail)
    }

    /// Ungated (informational) cells.
    pub fn info(&self) -> usize {
        self.count(GateOutcome::Info)
    }

    fn count(&self, gate: GateOutcome) -> usize {
        self.runs.iter().filter(|r| r.outcome.gate == gate).count()
    }

    /// The campaign verdict: true iff no gate failed.
    pub fn pass(&self) -> bool {
        self.failed() == 0
    }

    /// Serialize as JSON (stable key order, hand-rolled like every
    /// codec in this workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"campaign\": \"{}\",\n", esc(&self.name)));
        out.push_str(&format!("  \"cells\": {},\n", self.runs.len()));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str(&format!("  \"failed\": {},\n", self.failed()));
        out.push_str(&format!("  \"info\": {},\n", self.info()));
        out.push_str(&format!("  \"pass\": {},\n", self.pass()));
        out.push_str("  \"results\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let spec = &run.spec;
            out.push_str("    {\n");
            out.push_str(&format!("      \"id\": \"{}\",\n", esc(&spec.id)));
            out.push_str(&format!("      \"kind\": \"{}\",\n", spec.kind.name()));
            out.push_str(&format!(
                "      \"policy\": {},\n",
                opt_str(spec.policy.as_deref())
            ));
            out.push_str(&format!(
                "      \"workload\": \"{}\",\n",
                esc(&spec.workload)
            ));
            out.push_str(&format!(
                "      \"enclave_size\": {},\n",
                opt_u64(spec.enclave_size)
            ));
            out.push_str(&format!(
                "      \"fault_plan\": {},\n",
                opt_str(spec.fault_plan.as_deref())
            ));
            out.push_str(&format!(
                "      \"traffic_shape\": {},\n",
                opt_str(spec.traffic_shape.as_deref())
            ));
            out.push_str(&format!("      \"seed\": {},\n", opt_u64(spec.seed)));
            out.push_str(&format!(
                "      \"gate\": \"{}\",\n",
                run.outcome.gate.name()
            ));
            out.push_str("      \"metrics\": {");
            for (j, (key, value)) in run.outcome.metrics.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", esc(key), json_f64(*value)));
            }
            out.push_str("},\n");
            out.push_str(&format!(
                "      \"reason\": \"{}\"\n",
                esc(&run.outcome.reason)
            ));
            out.push_str(if i + 1 < self.runs.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render as a markdown summary (the CI artifact).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# Campaign report: {}\n\n", self.name);
        out.push_str(&format!(
            "{} cells — {} passed, {} failed, {} informational — verdict **{}**\n\n",
            self.runs.len(),
            self.passed(),
            self.failed(),
            self.info(),
            if self.pass() { "PASS" } else { "FAIL" }
        ));
        out.push_str("| cell | kind | coordinates | gate | reason |\n");
        out.push_str("|------|------|-------------|------|--------|\n");
        for run in &self.runs {
            let spec = &run.spec;
            let coords = [
                spec.policy.as_deref(),
                Some(spec.workload.as_str()),
                spec.fault_plan.as_deref(),
                spec.traffic_shape.as_deref(),
            ]
            .into_iter()
            .flatten()
            .collect::<Vec<_>>()
            .join(" × ");
            let mut coords = coords;
            if let Some(size) = spec.enclave_size {
                coords.push_str(&format!(" × {size}p"));
            }
            if let Some(seed) = spec.seed {
                coords.push_str(&format!(" × s{seed}"));
            }
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} |\n",
                spec.id,
                spec.kind.name(),
                coords,
                run.outcome.gate.name(),
                run.outcome.reason.replace('|', "\\|").replace('\n', " ")
            ));
        }
        // Failures get their metrics spelled out; passing cells stay
        // one-line so big sweeps remain skimmable.
        let failures: Vec<&CellRun> = self
            .runs
            .iter()
            .filter(|r| r.outcome.gate == GateOutcome::Fail)
            .collect();
        if !failures.is_empty() {
            out.push_str("\n## Failed cells\n\n");
            for run in failures {
                out.push_str(&format!("### `{}` {}\n\n", run.spec.id, run.spec.coords()));
                out.push_str(&format!("{}\n\n", run.outcome.reason));
                for (key, value) in &run.outcome.metrics {
                    out.push_str(&format!("- {key}: {}\n", json_f64(*value)));
                }
                out.push('\n');
            }
        }
        out
    }

    /// One bench-trajectory line for `baselines/BENCH_HISTORY.jsonl`:
    /// the cycles/op of every bench cell in this campaign, keyed by
    /// workload. `None` when the campaign ran no bench cells, so
    /// non-perf campaigns never pollute the trajectory. Deliberately
    /// timestamp-free — the file's line order *is* the trajectory, and
    /// a wall-clock stamp would break the report's determinism
    /// contract.
    pub fn bench_history_line(&self) -> Option<String> {
        let mut entries: Vec<(String, f64)> = Vec::new();
        for run in &self.runs {
            if run.spec.kind != crate::cell::CellKind::Bench {
                continue;
            }
            if entries.iter().any(|(w, _)| *w == run.spec.workload) {
                continue;
            }
            if let Some((_, v)) = run
                .outcome
                .metrics
                .iter()
                .find(|(k, _)| k == "cycles_per_op")
            {
                entries.push((run.spec.workload.clone(), *v));
            }
        }
        if entries.is_empty() {
            return None;
        }
        let mut out = format!("{{\"campaign\": \"{}\", \"bench\": {{", esc(&self.name));
        for (i, (workload, cycles)) in entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", esc(workload), json_f64(*cycles)));
        }
        out.push_str("}}");
        Some(out)
    }
}

/// Render the bench trajectory (the accumulated
/// `BENCH_HISTORY.jsonl` contents) as a markdown section: one row per
/// recorded run, one column per workload, cycles/op in the cells, and
/// a closing first→latest delta line per workload. Unparseable lines
/// are skipped rather than failing the report — the history file is
/// append-only across many CI runs and must never brick a campaign.
pub fn render_bench_trend(history: &str) -> String {
    let runs: Vec<Vec<(String, f64)>> = history
        .lines()
        .filter_map(parse_history_line)
        .filter(|entries| !entries.is_empty())
        .collect();
    if runs.is_empty() {
        return String::new();
    }
    // Column order: first appearance across the whole history.
    let mut workloads: Vec<String> = Vec::new();
    for entries in &runs {
        for (w, _) in entries {
            if !workloads.contains(w) {
                workloads.push(w.clone());
            }
        }
    }
    let mut out = String::from("\n## Cycles/op trend\n\n");
    out.push_str(&format!("{} recorded runs (oldest first):\n\n", runs.len()));
    out.push_str("| run |");
    for w in &workloads {
        out.push_str(&format!(" {w} |"));
    }
    out.push_str("\n|-----|");
    for _ in &workloads {
        out.push_str("------|");
    }
    out.push('\n');
    for (i, entries) in runs.iter().enumerate() {
        out.push_str(&format!("| {} |", i + 1));
        for w in &workloads {
            match entries.iter().find(|(k, _)| k == w) {
                Some((_, v)) => out.push_str(&format!(" {:.1} |", v)),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out.push('\n');
    for w in &workloads {
        let series: Vec<f64> = runs
            .iter()
            .filter_map(|entries| entries.iter().find(|(k, _)| k == w).map(|(_, v)| *v))
            .collect();
        if let (Some(first), Some(last)) = (series.first(), series.last()) {
            if *first > 0.0 && series.len() > 1 {
                out.push_str(&format!(
                    "- {w}: {:.1} → {:.1} cycles/op ({:+.1}% over {} runs)\n",
                    first,
                    last,
                    (last / first - 1.0) * 100.0,
                    series.len()
                ));
            }
        }
    }
    out
}

/// Extract the `"bench": {"workload": cycles, ...}` map from one
/// history line. Hand-rolled like every codec in this workspace; the
/// emitter is [`CampaignReport::bench_history_line`], so the grammar
/// is narrow: flat string→number pairs, no nesting, no escapes inside
/// workload names.
fn parse_history_line(line: &str) -> Option<Vec<(String, f64)>> {
    let start = line.find("\"bench\"")?;
    let rest = &line[start..];
    let open = rest.find('{')?;
    let close = rest[open..].find('}')? + open;
    let body = &rest[open + 1..close];
    let mut out = Vec::new();
    for pair in body.split(',') {
        let (key, value) = pair.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value: f64 = value.trim().parse().ok()?;
        if key.is_empty() {
            return None;
        }
        out.push((key.to_owned(), value));
    }
    Some(out)
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_str(value: Option<&str>) -> String {
    match value {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".to_owned(),
    }
}

fn opt_u64(value: Option<u64>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKind, CellOutcome, CellSpec, SuiteParams};

    fn run(gate: GateOutcome, reason: &str) -> CellRun {
        CellRun {
            spec: CellSpec::new(
                CellKind::Replay,
                Some("clusters".into()),
                "spell".into(),
                None,
                Some("quiet".into()),
                None,
                Some(1),
                SuiteParams::default(),
            ),
            outcome: CellOutcome {
                gate,
                metrics: vec![("events".into(), 42.0)],
                reason: reason.into(),
            },
            resumed: false,
        }
    }

    #[test]
    fn verdict_is_conjunction_of_gates() {
        let report = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Pass, "ok"), run(GateOutcome::Info, "fyi")],
        };
        assert!(report.pass());
        let report = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Pass, "ok"), run(GateOutcome::Fail, "no")],
        };
        assert!(!report.pass());
        assert_eq!(report.failed(), 1);
    }

    #[test]
    fn report_ignores_the_resumed_flag() {
        let mut a = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Pass, "ok")],
        };
        let json_fresh = a.to_json();
        let md_fresh = a.to_markdown();
        a.runs[0].resumed = true;
        assert_eq!(
            a.to_json(),
            json_fresh,
            "resume must not perturb the report"
        );
        assert_eq!(a.to_markdown(), md_fresh);
    }

    #[test]
    fn json_escapes_quotes_and_reason_text() {
        let report = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Fail, "said \"no\"\nline two")],
        };
        let json = report.to_json();
        assert!(json.contains("said \\\"no\\\"\\nline two"));
        assert!(json.contains("\"pass\": false"));
    }

    fn bench_run(workload: &str, cycles_per_op: f64) -> CellRun {
        CellRun {
            spec: CellSpec::new(
                CellKind::Bench,
                None,
                workload.into(),
                None,
                None,
                None,
                None,
                SuiteParams::default(),
            ),
            outcome: CellOutcome {
                gate: GateOutcome::Pass,
                metrics: vec![("cycles_per_op".into(), cycles_per_op)],
                reason: "ok".into(),
            },
            resumed: false,
        }
    }

    #[test]
    fn history_line_covers_bench_cells_only() {
        let report = CampaignReport {
            name: "bench-smoke".into(),
            runs: vec![
                bench_run("spell", 1234.5),
                bench_run("font", 42.0),
                run(GateOutcome::Pass, "not a bench cell"),
            ],
        };
        let line = report.bench_history_line().expect("has bench cells");
        assert_eq!(
            line,
            "{\"campaign\": \"bench-smoke\", \"bench\": \
             {\"spell\": 1234.5, \"font\": 42}}"
        );
        // And the emitted line round-trips through the trend parser.
        let parsed = parse_history_line(&line).expect("parses");
        assert_eq!(
            parsed,
            vec![("spell".into(), 1234.5), ("font".into(), 42.0)]
        );

        let no_bench = CampaignReport {
            name: "fleet-only".into(),
            runs: vec![run(GateOutcome::Pass, "ok")],
        };
        assert!(no_bench.bench_history_line().is_none());
    }

    #[test]
    fn trend_renders_rows_per_run_and_deltas() {
        let history = "\
{\"campaign\": \"bench-smoke\", \"bench\": {\"spell\": 1000, \"font\": 50}}\n\
not json at all\n\
{\"campaign\": \"bench-smoke\", \"bench\": {\"spell\": 1100, \"font\": 45}}\n";
        let md = render_bench_trend(history);
        assert!(md.contains("## Cycles/op trend"));
        assert!(md.contains("2 recorded runs"), "bad line skipped:\n{md}");
        assert!(md.contains("| 1 | 1000.0 | 50.0 |"));
        assert!(md.contains("| 2 | 1100.0 | 45.0 |"));
        assert!(md.contains("- spell: 1000.0 → 1100.0 cycles/op (+10.0% over 2 runs)"));
        assert!(md.contains("- font: 50.0 → 45.0 cycles/op (-10.0% over 2 runs)"));
        assert_eq!(render_bench_trend(""), "");
    }

    #[test]
    fn markdown_lists_failures_with_metrics() {
        let report = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Fail, "broke")],
        };
        let md = report.to_markdown();
        assert!(md.contains("## Failed cells"));
        assert!(md.contains("- events: 42"));
        assert!(md.contains("verdict **FAIL**"));
    }
}
