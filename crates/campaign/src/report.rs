//! The campaign report: one JSON document plus one markdown summary
//! covering every cell.
//!
//! The report is a pure function of the cell specs and their journaled
//! outcomes — no wall-clock, no hostnames, no resumed-vs-fresh marks —
//! so a campaign interrupted and resumed produces a report
//! byte-identical to an uninterrupted run (the resume property test
//! pins this).

use crate::cell::{json_f64, GateOutcome};
use crate::runner::CellRun;

/// A finished campaign, ready to render.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name from the config.
    pub name: String,
    /// Every cell, in expansion order.
    pub runs: Vec<CellRun>,
}

impl CampaignReport {
    /// Cells whose gate passed.
    pub fn passed(&self) -> usize {
        self.count(GateOutcome::Pass)
    }

    /// Cells whose gate failed.
    pub fn failed(&self) -> usize {
        self.count(GateOutcome::Fail)
    }

    /// Ungated (informational) cells.
    pub fn info(&self) -> usize {
        self.count(GateOutcome::Info)
    }

    fn count(&self, gate: GateOutcome) -> usize {
        self.runs.iter().filter(|r| r.outcome.gate == gate).count()
    }

    /// The campaign verdict: true iff no gate failed.
    pub fn pass(&self) -> bool {
        self.failed() == 0
    }

    /// Serialize as JSON (stable key order, hand-rolled like every
    /// codec in this workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"campaign\": \"{}\",\n", esc(&self.name)));
        out.push_str(&format!("  \"cells\": {},\n", self.runs.len()));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str(&format!("  \"failed\": {},\n", self.failed()));
        out.push_str(&format!("  \"info\": {},\n", self.info()));
        out.push_str(&format!("  \"pass\": {},\n", self.pass()));
        out.push_str("  \"results\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let spec = &run.spec;
            out.push_str("    {\n");
            out.push_str(&format!("      \"id\": \"{}\",\n", esc(&spec.id)));
            out.push_str(&format!("      \"kind\": \"{}\",\n", spec.kind.name()));
            out.push_str(&format!(
                "      \"policy\": {},\n",
                opt_str(spec.policy.as_deref())
            ));
            out.push_str(&format!(
                "      \"workload\": \"{}\",\n",
                esc(&spec.workload)
            ));
            out.push_str(&format!(
                "      \"enclave_size\": {},\n",
                opt_u64(spec.enclave_size)
            ));
            out.push_str(&format!(
                "      \"fault_plan\": {},\n",
                opt_str(spec.fault_plan.as_deref())
            ));
            out.push_str(&format!(
                "      \"traffic_shape\": {},\n",
                opt_str(spec.traffic_shape.as_deref())
            ));
            out.push_str(&format!("      \"seed\": {},\n", opt_u64(spec.seed)));
            out.push_str(&format!(
                "      \"gate\": \"{}\",\n",
                run.outcome.gate.name()
            ));
            out.push_str("      \"metrics\": {");
            for (j, (key, value)) in run.outcome.metrics.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", esc(key), json_f64(*value)));
            }
            out.push_str("},\n");
            out.push_str(&format!(
                "      \"reason\": \"{}\"\n",
                esc(&run.outcome.reason)
            ));
            out.push_str(if i + 1 < self.runs.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render as a markdown summary (the CI artifact).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# Campaign report: {}\n\n", self.name);
        out.push_str(&format!(
            "{} cells — {} passed, {} failed, {} informational — verdict **{}**\n\n",
            self.runs.len(),
            self.passed(),
            self.failed(),
            self.info(),
            if self.pass() { "PASS" } else { "FAIL" }
        ));
        out.push_str("| cell | kind | coordinates | gate | reason |\n");
        out.push_str("|------|------|-------------|------|--------|\n");
        for run in &self.runs {
            let spec = &run.spec;
            let coords = [
                spec.policy.as_deref(),
                Some(spec.workload.as_str()),
                spec.fault_plan.as_deref(),
                spec.traffic_shape.as_deref(),
            ]
            .into_iter()
            .flatten()
            .collect::<Vec<_>>()
            .join(" × ");
            let mut coords = coords;
            if let Some(size) = spec.enclave_size {
                coords.push_str(&format!(" × {size}p"));
            }
            if let Some(seed) = spec.seed {
                coords.push_str(&format!(" × s{seed}"));
            }
            out.push_str(&format!(
                "| `{}` | {} | {} | {} | {} |\n",
                spec.id,
                spec.kind.name(),
                coords,
                run.outcome.gate.name(),
                run.outcome.reason.replace('|', "\\|").replace('\n', " ")
            ));
        }
        // Failures get their metrics spelled out; passing cells stay
        // one-line so big sweeps remain skimmable.
        let failures: Vec<&CellRun> = self
            .runs
            .iter()
            .filter(|r| r.outcome.gate == GateOutcome::Fail)
            .collect();
        if !failures.is_empty() {
            out.push_str("\n## Failed cells\n\n");
            for run in failures {
                out.push_str(&format!("### `{}` {}\n\n", run.spec.id, run.spec.coords()));
                out.push_str(&format!("{}\n\n", run.outcome.reason));
                for (key, value) in &run.outcome.metrics {
                    out.push_str(&format!("- {key}: {}\n", json_f64(*value)));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_str(value: Option<&str>) -> String {
    match value {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".to_owned(),
    }
}

fn opt_u64(value: Option<u64>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKind, CellOutcome, CellSpec, SuiteParams};

    fn run(gate: GateOutcome, reason: &str) -> CellRun {
        CellRun {
            spec: CellSpec::new(
                CellKind::Replay,
                Some("clusters".into()),
                "spell".into(),
                None,
                Some("quiet".into()),
                None,
                Some(1),
                SuiteParams::default(),
            ),
            outcome: CellOutcome {
                gate,
                metrics: vec![("events".into(), 42.0)],
                reason: reason.into(),
            },
            resumed: false,
        }
    }

    #[test]
    fn verdict_is_conjunction_of_gates() {
        let report = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Pass, "ok"), run(GateOutcome::Info, "fyi")],
        };
        assert!(report.pass());
        let report = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Pass, "ok"), run(GateOutcome::Fail, "no")],
        };
        assert!(!report.pass());
        assert_eq!(report.failed(), 1);
    }

    #[test]
    fn report_ignores_the_resumed_flag() {
        let mut a = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Pass, "ok")],
        };
        let json_fresh = a.to_json();
        let md_fresh = a.to_markdown();
        a.runs[0].resumed = true;
        assert_eq!(
            a.to_json(),
            json_fresh,
            "resume must not perturb the report"
        );
        assert_eq!(a.to_markdown(), md_fresh);
    }

    #[test]
    fn json_escapes_quotes_and_reason_text() {
        let report = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Fail, "said \"no\"\nline two")],
        };
        let json = report.to_json();
        assert!(json.contains("said \\\"no\\\"\\nline two"));
        assert!(json.contains("\"pass\": false"));
    }

    #[test]
    fn markdown_lists_failures_with_metrics() {
        let report = CampaignReport {
            name: "t".into(),
            runs: vec![run(GateOutcome::Fail, "broke")],
        };
        let md = report.to_markdown();
        assert!(md.contains("## Failed cells"));
        assert!(md.contains("- events: 42"));
        assert!(md.contains("verdict **FAIL**"));
    }
}
