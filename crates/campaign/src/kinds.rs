//! Cell executors: the bridge from a [`CellSpec`] to the subsystem it
//! exercises.
//!
//! Each kind wraps an existing crate as a *library call* — no
//! subprocesses, no re-parsing of CLI output — so a campaign cell sees
//! exactly what the subsystem's own tests see:
//!
//! * `bench` → [`autarky_bench::perf`] single-workload measurement with
//!   the baseline regression gate;
//! * `leakage` → [`autarky_leakage::run_audit_filtered`] on one
//!   (policy × workload) audit cell;
//! * `replay` → [`autarky_flightrec::verify_replay`] record → replay →
//!   diff determinism check;
//! * `fleet` → [`autarky_fleet::Fleet`] load-generated run with latency
//!   percentiles and the zero-silent-drop accounting gate;
//! * `profile` → [`autarky_profile::collect`] cycle-attribution profile
//!   with the unattributed-residual gate and a hot-path cycles/fault
//!   baseline gate;
//! * `figure` → paper-figure reproduction (fig5's tag-ledger latency
//!   breakdown), gated on the breakdown being non-degenerate.
//!
//! Executors are pure functions of the spec (plus, for bench and
//! profile, the baseline file named in it), so a cell's outcome is
//! reproducible from its content address alone. Profile cells
//! deliberately report only simulated-cycle metrics — the collector's
//! host wall-clock account stays out of the journal so resumed and
//! fresh campaigns stay byte-identical.

use autarky_fleet::Request;
use autarky_fleet::{
    export_trace, kv_stream, render_alert_log, spell_stream, Arrivals, Fleet, FleetConfig,
    FleetReport, LoadConfig, MemberConfig, StagedCrash, TimedRequest, WatchConfig, WorkloadKind,
};
use autarky_flightrec::{verify_replay, Schedule, SchedulePolicy, ScheduleWorkload};
use autarky_leakage::{run_audit_filtered, AuditConfig, Gate};
use autarky_os_sim::{FaultPlan, FlightEvent};
use autarky_runtime::{PagingMechanism, RuntimeConfig};

use crate::cell::{CellKind, CellOutcome, CellSpec, GateOutcome};

/// Execute one cell against its subsystem.
pub fn execute_cell(spec: &CellSpec) -> CellOutcome {
    match spec.kind {
        CellKind::Bench => run_bench(spec),
        CellKind::Leakage => run_leakage(spec),
        CellKind::Replay => run_replay(spec),
        CellKind::Fleet => run_fleet(spec),
        CellKind::Profile => run_profile(spec),
        CellKind::Figure => run_figure(spec),
        CellKind::Watch => run_watch(spec),
    }
}

// ---------------------------------------------------------------- bench

fn run_bench(spec: &CellSpec) -> CellOutcome {
    let Some(perf) = autarky_bench::perf::measure_one(&spec.workload, spec.params.scale) else {
        return CellOutcome::fail(format!("unknown bench workload {:?}", spec.workload));
    };
    let cur = perf.cycles_per_op();
    let mut metrics = vec![
        ("ops".to_owned(), perf.ops as f64),
        ("cycles".to_owned(), perf.cycles as f64),
        ("cycles_per_op".to_owned(), cur),
        ("faults".to_owned(), perf.faults as f64),
        ("fault_rate".to_owned(), perf.fault_rate()),
    ];
    // Telemetry tie-in: surface the hottest span so a regression's
    // *where* rides along with its *how much*.
    if let Some(top) = perf.spans.iter().max_by_key(|s| s.cycles) {
        metrics.push((format!("top_span_{}_cycles", top.name), top.cycles as f64));
    }
    let Some(baseline_path) = &spec.params.baseline else {
        return CellOutcome {
            gate: GateOutcome::Info,
            metrics,
            reason: format!("{:.1} cycles/op (no baseline configured)", cur),
        };
    };
    let json = match std::fs::read_to_string(baseline_path) {
        Ok(json) => json,
        Err(e) => {
            return CellOutcome {
                gate: GateOutcome::Fail,
                metrics,
                reason: format!("baseline {baseline_path} unreadable: {e}"),
            }
        }
    };
    let Some(base) = autarky_bench::perf::baseline_cycles_per_op(&json, &spec.workload) else {
        return CellOutcome {
            gate: GateOutcome::Fail,
            metrics,
            reason: format!(
                "workload {:?} missing from baseline {baseline_path}",
                spec.workload
            ),
        };
    };
    if base <= 0.0 {
        return CellOutcome {
            gate: GateOutcome::Fail,
            metrics,
            reason: format!("baseline cycles/op for {:?} is not positive", spec.workload),
        };
    }
    let delta_pct = (cur / base - 1.0) * 100.0;
    metrics.push(("baseline_cycles_per_op".to_owned(), base));
    metrics.push(("delta_pct".to_owned(), delta_pct));
    let gate = if delta_pct <= spec.params.max_growth_pct {
        GateOutcome::Pass
    } else {
        GateOutcome::Fail
    };
    CellOutcome {
        gate,
        metrics,
        reason: format!(
            "{cur:.1} cycles/op vs baseline {base:.1} ({delta_pct:+.1}%, limit +{:.1}%)",
            spec.params.max_growth_pct
        ),
    }
}

// -------------------------------------------------------------- leakage

fn run_leakage(spec: &CellSpec) -> CellOutcome {
    let Some(policy) = &spec.policy else {
        return CellOutcome::fail("leakage cell without a policy axis");
    };
    let cfg = AuditConfig {
        seeds: spec.params.samples,
        baseline_min_mi: spec.params.baseline_min_mi,
        oram_max_mi: spec.params.oram_max_mi,
    };
    let label = format!("{policy}/{}", spec.workload);
    let report = run_audit_filtered(&cfg, std::slice::from_ref(&label));
    let Some(cell) = report.cells.first() else {
        return CellOutcome::fail(format!("audit matrix has no cell {label}"));
    };
    let mut metrics = vec![
        ("mi_bits".to_owned(), cell.dist.mi_bits),
        ("accuracy".to_owned(), cell.dist.accuracy),
        ("mean_cross_tv".to_owned(), cell.dist.mean_cross_tv),
        ("mean_within_tv".to_owned(), cell.dist.mean_within_tv),
        ("mean_symbols_0".to_owned(), cell.dist.mean_symbols[0]),
        ("mean_symbols_1".to_owned(), cell.dist.mean_symbols[1]),
    ];
    if let Some(rate) = &cell.rate {
        metrics.push(("rate_faults".to_owned(), rate.faults as f64));
        metrics.push((
            "rate_bits_per_progress".to_owned(),
            rate.measured_bits_per_progress,
        ));
    }
    let gate = match cell.gate {
        Gate::Pass => GateOutcome::Pass,
        Gate::Fail => GateOutcome::Fail,
        Gate::Info => GateOutcome::Info,
    };
    CellOutcome {
        gate,
        metrics,
        reason: cell.reason.clone(),
    }
}

// --------------------------------------------------------------- replay

/// Injection rate for the named replay fault plans. Matches the
/// moderate rates the flight-recorder tests drive: high enough that
/// injections actually land, low enough that hostile runs usually
/// terminate with a detection rather than an early wedge.
const REPLAY_TRANSIENT_RATE: f64 = 0.0625;
const REPLAY_HOSTILE_RATE: f64 = 0.03;

fn run_replay(spec: &CellSpec) -> CellOutcome {
    let (Some(policy), Some(plan_name), Some(seed)) = (&spec.policy, &spec.fault_plan, spec.seed)
    else {
        return CellOutcome::fail("replay cell missing policy/fault_plan/seed axis");
    };
    let Some(policy) = SchedulePolicy::from_name(policy) else {
        return CellOutcome::fail(format!("unknown replay policy {policy:?}"));
    };
    let Some(workload) = ScheduleWorkload::from_name(&spec.workload) else {
        return CellOutcome::fail(format!("unknown replay workload {:?}", spec.workload));
    };
    // The plan RNG seed is derived from the cell's content address, so
    // two cells differing only in their seed axis inject differently —
    // while record and replay of the *same* cell share one plan.
    let plan_seed = spec.derived_seed();
    let fault_plan = match plan_name.as_str() {
        "quiet" => None,
        "transient" => Some(FaultPlan::transient_only(plan_seed, REPLAY_TRANSIENT_RATE)),
        "hostile" => Some(FaultPlan::hostile(plan_seed, REPLAY_HOSTILE_RATE)),
        other => return CellOutcome::fail(format!("unknown replay fault plan {other:?}")),
    };
    let schedule = Schedule {
        policy,
        workload,
        secret: spec.params.secret,
        seed,
        fault_plan,
    };
    let verdict = verify_replay(&schedule);
    let metrics = vec![
        ("events".to_owned(), verdict.record.records.len() as f64),
        (
            "telemetry_bytes".to_owned(),
            verdict.record.telemetry_snapshot.len() as f64,
        ),
        ("dropped".to_owned(), verdict.record.dropped as f64),
        (
            "outcome_ok".to_owned(),
            f64::from(u8::from(verdict.record.outcome == "ok")),
        ),
    ];
    if verdict.deterministic() {
        return CellOutcome {
            gate: GateOutcome::Pass,
            metrics,
            reason: format!(
                "deterministic ({} events, outcome {})",
                verdict.record.records.len(),
                verdict.record.outcome
            ),
        };
    }
    let mut why = Vec::new();
    if !verdict.log_identical {
        why.push("log diverged".to_owned());
    }
    if !verdict.telemetry_identical {
        why.push("telemetry diverged".to_owned());
    }
    if !verdict.outcome_identical {
        why.push(format!(
            "outcome {:?} vs {:?}",
            verdict.record.outcome, verdict.replay.outcome
        ));
    }
    if !verdict.decisions_resolved {
        why.push("unresolved decision chain".to_owned());
    }
    if let Some(div) = &verdict.divergence {
        why.push(format!("first divergence at log line {}", div.index + 1));
    }
    CellOutcome {
        gate: GateOutcome::Fail,
        metrics,
        reason: format!("replay not deterministic: {}", why.join("; ")),
    }
}

// ---------------------------------------------------------------- fleet

/// KV members preload this many items; with 2 KiB values that is two
/// items per page, so a small paging budget keeps members faulting.
const FLEET_KV_ITEMS: u64 = 64;
const FLEET_KV_VALUE_SIZE: usize = 2048;
const FLEET_SPELL_DICT_WORDS: usize = 600;
const FLEET_SPELL_WORDS_PER_REQ: usize = 12;
/// Near-uniform key skew: working set stays larger than the budget.
const FLEET_KV_THETA: f64 = 0.2;

fn run_fleet(spec: &CellSpec) -> CellOutcome {
    let (Some(shape), Some(plan_name), Some(enclave_size), Some(_seed)) = (
        &spec.traffic_shape,
        &spec.fault_plan,
        spec.enclave_size,
        spec.seed,
    ) else {
        return CellOutcome::fail("fleet cell missing traffic_shape/fault_plan/enclave_size/seed");
    };
    let heap_pages = enclave_size as usize;
    // Budget scales with the enclave so bigger cells are not trivially
    // all-resident; the floor keeps tiny cells making progress.
    let budget = (heap_pages / 12).clamp(12, 48);
    let member = |name: &str, workload: WorkloadKind| MemberConfig {
        name: name.into(),
        workload,
        heap_pages,
        epc_quota: 0,
        runtime: RuntimeConfig {
            budget,
            ..Default::default()
        },
        pin_kv_metadata: false,
    };
    let kv = || WorkloadKind::Kv {
        items: FLEET_KV_ITEMS,
        value_size: FLEET_KV_VALUE_SIZE,
    };
    let spell = || WorkloadKind::Spell {
        dict_words: FLEET_SPELL_DICT_WORDS,
    };
    let members = match spec.workload.as_str() {
        "kvstore" => vec![
            member("kv-a", kv()),
            member("kv-b", kv()),
            member("kv-c", kv()),
        ],
        "spell" => vec![
            member("spell-a", spell()),
            member("spell-b", spell()),
            member("spell-c", spell()),
        ],
        "mixed" => vec![
            member("kv-a", kv()),
            member("kv-b", kv()),
            member("spell-a", spell()),
        ],
        other => return CellOutcome::fail(format!("unknown fleet workload {other:?}")),
    };
    let member_count = members.len();
    let requests = spec.params.requests;
    let plan_seed = spec.derived_seed();
    let staged_crash = match plan_name.as_str() {
        "quiet" => None,
        "transient" => Some(StagedCrash {
            after_total_served: (requests as u64 / 6).max(5),
            member: 0,
            plan: FaultPlan::transient_only(plan_seed, 0.05),
        }),
        "staged-evict" => Some(StagedCrash {
            after_total_served: (requests as u64 / 6).max(5),
            member: 0,
            plan: FaultPlan {
                // Unbounded continuous eviction: guarantees detection
                // (see the fleet tests' attack_plan rationale); the
                // supervisor disarms it at the first failover.
                spurious_evict: 1.0,
                max_injections: None,
                ..FaultPlan::quiescent(plan_seed)
            },
        }),
        other => return CellOutcome::fail(format!("unknown fleet fault plan {other:?}")),
    };
    let cfg = FleetConfig {
        epc_frames: spec.params.epc_frames,
        members,
        queue_cap: 256,
        watchdog_cycles: 50_000_000,
        restart_budget_cycles: 500_000_000,
        restart_cost_cycles: 5_000_000,
        max_retries: 3,
        retry_backoff_cycles: 100_000,
        max_watchdog_strikes: 1,
        max_restarts: 3,
        snapshot_every: 32,
        epc_reserve_frames: 0,
        shrink_floor_pages: 16,
        flight_capacity: 1 << 18,
        staged_crash,
        watch: None,
    };
    let traffic: Vec<Vec<TimedRequest>> = (0..member_count)
        .map(|i| {
            let load = LoadConfig {
                seed: plan_seed.wrapping_add(0x9e37_79b9 * (i as u64 + 1)),
                requests,
                arrivals: arrivals_for(shape),
                start_cycles: 1_000,
            };
            match spec.workload.as_str() {
                "spell" => spell_stream(
                    load,
                    "en",
                    FLEET_SPELL_DICT_WORDS,
                    FLEET_SPELL_WORDS_PER_REQ,
                ),
                "mixed" if i == member_count - 1 => spell_stream(
                    load,
                    "en",
                    FLEET_SPELL_DICT_WORDS,
                    FLEET_SPELL_WORDS_PER_REQ,
                ),
                _ => kv_stream(load, FLEET_KV_ITEMS, FLEET_KV_THETA),
            }
        })
        .collect();
    let mut fleet = match Fleet::new(cfg) {
        Ok(fleet) => fleet,
        Err(e) => return CellOutcome::fail(format!("fleet boot failed: {e}")),
    };
    let stats = match fleet.run(traffic) {
        Ok(stats) => stats,
        Err(e) => return CellOutcome::fail(format!("fleet run failed: {e}")),
    };
    let report = FleetReport::from_stats(&stats, fleet.now());

    let offered: u64 = report.members.iter().map(|m| m.offered).sum();
    let served: u64 = report.members.iter().map(|m| m.served).sum();
    let rejected: u64 = report.members.iter().map(|m| m.rejected).sum();
    let restarts: u32 = report.members.iter().map(|m| m.restarts).sum();
    let worst = |f: &dyn Fn(&autarky_fleet::MemberReport) -> u64| {
        report.members.iter().map(f).max().unwrap_or(0)
    };
    let metrics = vec![
        ("offered".to_owned(), offered as f64),
        ("served".to_owned(), served as f64),
        ("rejected".to_owned(), rejected as f64),
        ("restarts".to_owned(), f64::from(restarts)),
        (
            "p50_worst_cycles".to_owned(),
            worst(&|m| m.p50_cycles) as f64,
        ),
        (
            "p99_worst_cycles".to_owned(),
            worst(&|m| m.p99_cycles) as f64,
        ),
        (
            "p999_worst_cycles".to_owned(),
            worst(&|m| m.p999_cycles) as f64,
        ),
        ("run_cycles".to_owned(), report.run_cycles as f64),
    ];

    let mut failures = Vec::new();
    if !report.all_accounted() {
        failures.push("silent request drop (offered != served + rejected)".to_owned());
    }
    if plan_name == "staged-evict" {
        if !report.all_byte_identical() {
            failures.push("a restore was not byte-identical".to_owned());
        }
        if report.members.first().map_or(0, |m| m.restarts) == 0 {
            failures.push("victim was never failed over".to_owned());
        }
    }
    if failures.is_empty() {
        CellOutcome {
            gate: GateOutcome::Pass,
            metrics,
            reason: format!(
                "accounted: {served} served + {rejected} rejected of {offered}, {restarts} restarts"
            ),
        }
    } else {
        CellOutcome {
            gate: GateOutcome::Fail,
            metrics,
            reason: failures.join("; "),
        }
    }
}

// ---------------------------------------------------------------- watch

/// Keys the victim's stream cycles through, ascending. At two 2 KiB
/// items a page this spans 24 item pages against a 16-page budget, so
/// the FIFO always misses and the oldest pages — the injector's
/// victims — go untouched for a full key cycle.
const WATCH_COLD_KEYS: u64 = 48;
/// Arrival grid shared by every member's stream.
const WATCH_BURST_GAP_CYCLES: u64 = 20_000;
const WATCH_BURST_LEN: usize = 25;
const WATCH_IDLE_GAP_CYCLES: u64 = 30_000_000;
const WATCH_START_CYCLES: u64 = 1_000;
/// Storm shape: delays are the limp (each stormed request overruns the
/// 2M-cycle watchdog budget), spurious evicts are the probe.
const WATCH_STORM_DELAY_CYCLES: u64 = 1_500_000;

fn watch_bursty(seed: u64, requests: usize) -> LoadConfig {
    LoadConfig {
        seed,
        requests,
        arrivals: Arrivals::Bursty {
            burst_gap_cycles: WATCH_BURST_GAP_CYCLES,
            burst_len: WATCH_BURST_LEN as u32,
            idle_gap_cycles: WATCH_IDLE_GAP_CYCLES,
        },
        start_cycles: WATCH_START_CYCLES,
    }
}

/// The victim's stream: GETs cycling `0..WATCH_COLD_KEYS` ascending on
/// the shared bursty grid. Deterministic by construction (no RNG).
fn watch_victim_stream(requests: usize) -> Vec<TimedRequest> {
    let mut at = WATCH_START_CYCLES;
    let mut out = Vec::with_capacity(requests);
    for i in 0..requests {
        out.push(TimedRequest {
            arrival_cycles: at,
            request: Request::Get {
                key: (i as u64) % WATCH_COLD_KEYS,
            },
        });
        at += if (i + 1) % WATCH_BURST_LEN == 0 {
            WATCH_IDLE_GAP_CYCLES
        } else {
            WATCH_BURST_GAP_CYCLES
        };
    }
    out
}

/// Watchtower tuned to the staged storm: the SLO-burn detector judges
/// dispatch service time — the watchdog's own measure — so the race
/// against the three-strike watchdog runs on equal terms.
fn watch_tower_config() -> WatchConfig {
    WatchConfig {
        epoch_cycles: 1_000_000,
        warmup_windows: 8,
        fault_h_milli: 0,
        entropy_h_milli: 0,
        p99_budget_cycles: 1_600_000,
        min_window_requests: 1,
        ..Default::default()
    }
}

struct WatchRun {
    stats: Vec<autarky_fleet::MemberStats>,
    report: FleetReport,
    alert_log: String,
    trace: String,
    attacks: usize,
}

fn watch_scenario(spec: &CellSpec) -> Result<(FleetConfig, Vec<Vec<TimedRequest>>), String> {
    let requests = spec.params.requests;
    let plan_seed = spec.derived_seed();
    let victim = MemberConfig {
        name: "kv-a".into(),
        workload: WorkloadKind::Kv {
            items: FLEET_KV_ITEMS,
            value_size: FLEET_KV_VALUE_SIZE,
        },
        heap_pages: 192,
        epc_quota: 0,
        runtime: RuntimeConfig {
            budget: 16,
            ..Default::default()
        },
        // Keep the hot bucket array out of the self-paging set so a
        // spurious evict always lands on a cold item page.
        pin_kv_metadata: true,
    };
    let peer_kv = MemberConfig {
        name: "kv-b".into(),
        pin_kv_metadata: false,
        ..victim.clone()
    };
    let spell = MemberConfig {
        name: "spell-a".into(),
        workload: WorkloadKind::Spell {
            dict_words: FLEET_SPELL_DICT_WORDS,
        },
        heap_pages: 256,
        epc_quota: 0,
        runtime: RuntimeConfig {
            budget: 24,
            ..Default::default()
        },
        pin_kv_metadata: false,
    };
    let (members, traffic) = match spec.workload.as_str() {
        "kvstore" => (
            vec![victim, peer_kv],
            vec![
                watch_victim_stream(requests),
                kv_stream(
                    watch_bursty(plan_seed.wrapping_add(0x9e37_79b9), requests),
                    FLEET_KV_ITEMS,
                    0.99,
                ),
            ],
        ),
        "mixed" => (
            vec![victim, peer_kv, spell],
            vec![
                watch_victim_stream(requests),
                kv_stream(
                    watch_bursty(plan_seed.wrapping_add(0x9e37_79b9), requests),
                    FLEET_KV_ITEMS,
                    0.99,
                ),
                spell_stream(
                    watch_bursty(plan_seed.wrapping_add(2 * 0x9e37_79b9), requests),
                    "en",
                    FLEET_SPELL_DICT_WORDS,
                    FLEET_SPELL_WORDS_PER_REQ,
                ),
            ],
        ),
        other => return Err(format!("unknown watch workload {other:?}")),
    };
    let member_count = members.len();
    let staged_crash = match spec.fault_plan.as_deref() {
        Some("quiet") => None,
        // Arm as the first fleet-wide burst finishes draining: the
        // detectors complete warmup on healthy traffic and the storm
        // lands on the burst's tail.
        Some("storm") => Some(StagedCrash {
            after_total_served: (member_count * WATCH_BURST_LEN - member_count - 2) as u64,
            member: 0,
            plan: FaultPlan {
                spurious_evict: 0.2,
                delay: 0.75,
                delay_cycles: WATCH_STORM_DELAY_CYCLES,
                max_injections: None,
                ..FaultPlan::quiescent(plan_seed)
            },
        }),
        other => return Err(format!("unknown watch fault plan {other:?}")),
    };
    let cfg = FleetConfig {
        epc_frames: spec.params.epc_frames,
        members,
        queue_cap: 64,
        watchdog_cycles: 2_000_000,
        restart_budget_cycles: 500_000_000,
        restart_cost_cycles: 5_000_000,
        max_retries: 3,
        retry_backoff_cycles: 100_000,
        max_watchdog_strikes: 3,
        max_restarts: 3,
        snapshot_every: 32,
        epc_reserve_frames: 32,
        shrink_floor_pages: 16,
        flight_capacity: 1 << 18,
        staged_crash,
        watch: Some(watch_tower_config()),
    };
    Ok((cfg, traffic))
}

fn watch_run_once(spec: &CellSpec) -> Result<WatchRun, String> {
    let (cfg, traffic) = watch_scenario(spec)?;
    let mut fleet = Fleet::new(cfg).map_err(|e| format!("watch fleet boot failed: {e}"))?;
    let stats = fleet
        .run(traffic)
        .map_err(|e| format!("watch fleet run failed: {e}"))?;
    let report = FleetReport::from_stats(&stats, fleet.now());
    let member_names = fleet.member_names();
    let members: Vec<_> = stats.iter().map(|s| (s.eid, s.name.clone())).collect();
    let alert_log = render_alert_log(fleet.watch_alerts(), &member_names);
    let records = fleet.flight_log();
    let attacks = records
        .iter()
        .filter(|r| matches!(r.event, FlightEvent::AttackDetected { .. }))
        .count();
    let trace = export_trace(&records, &members);
    Ok(WatchRun {
        stats,
        report,
        alert_log,
        trace,
        attacks,
    })
}

fn run_watch(spec: &CellSpec) -> CellOutcome {
    if spec.fault_plan.is_none() || spec.seed.is_none() {
        return CellOutcome::fail("watch cell missing fault_plan/seed");
    }
    // Watched twice: the alert log and merged Perfetto trace must come
    // back byte-identical, or the observability layer itself perturbs
    // the run.
    let run = match watch_run_once(spec) {
        Ok(run) => run,
        Err(e) => return CellOutcome::fail(e),
    };
    let rerun = match watch_run_once(spec) {
        Ok(run) => run,
        Err(e) => return CellOutcome::fail(e),
    };

    let alerts: u64 = run.stats.iter().map(|s| s.watch_alerts).sum();
    let first_alert = run.stats[0].first_alert_cycles;
    let first_failover = run.stats[0].first_failover_cycles;
    let offered: u64 = run.report.members.iter().map(|m| m.offered).sum();
    let served: u64 = run.report.members.iter().map(|m| m.served).sum();
    let restarts: u32 = run.report.members.iter().map(|m| m.restarts).sum();
    let metrics = vec![
        ("alerts".to_owned(), alerts as f64),
        ("first_alert_cycles".to_owned(), first_alert as f64),
        ("first_failover_cycles".to_owned(), first_failover as f64),
        ("restarts".to_owned(), f64::from(restarts)),
        ("offered".to_owned(), offered as f64),
        ("served".to_owned(), served as f64),
        ("run_cycles".to_owned(), run.report.run_cycles as f64),
    ];

    let mut failures = Vec::new();
    if !run.report.all_accounted() {
        failures.push("silent request drop (offered != served + rejected)".to_owned());
    }
    if run.alert_log != rerun.alert_log {
        failures.push("alert log differs across reruns".to_owned());
    }
    if run.trace != rerun.trace {
        failures.push("merged trace differs across reruns".to_owned());
    }
    match spec.fault_plan.as_deref() {
        Some("quiet") => {
            if alerts > spec.params.max_false_alerts {
                failures.push(format!(
                    "false positives: {alerts} alerts on quiescent traffic \
                     (budget {})",
                    spec.params.max_false_alerts
                ));
            }
            if restarts > 0 {
                failures.push(format!("{restarts} restarts on quiescent traffic"));
            }
        }
        Some("storm") => {
            if run.stats[0].watch_alerts < spec.params.min_alerts {
                failures.push(format!(
                    "victim raised {} alerts, expected at least {}",
                    run.stats[0].watch_alerts, spec.params.min_alerts
                ));
            }
            if first_alert == 0 || (first_failover > 0 && first_alert > first_failover) {
                failures.push(format!(
                    "alert (cycle {first_alert}) did not lead failover \
                     (cycle {first_failover})"
                ));
            }
            if run.report.members.first().map_or(0, |m| m.restarts) == 0 {
                failures.push("victim was never failed over".to_owned());
            }
            if run.attacks > 0 {
                failures.push(format!(
                    "{} AttackDetected verdicts: the probe tripped the \
                     resident-fault tripwire instead of the watchtower",
                    run.attacks
                ));
            }
            if !run.report.all_byte_identical() {
                failures.push("a restore was not byte-identical".to_owned());
            }
        }
        _ => failures.push("watch cell missing fault_plan".to_owned()),
    }

    if failures.is_empty() {
        CellOutcome {
            gate: GateOutcome::Pass,
            metrics,
            reason: format!(
                "{alerts} alerts, first at cycle {first_alert} vs failover at \
                 {first_failover}; artifacts byte-identical"
            ),
        }
    } else {
        CellOutcome {
            gate: GateOutcome::Fail,
            metrics,
            reason: failures.join("; "),
        }
    }
}

// -------------------------------------------------------------- profile

fn run_profile(spec: &CellSpec) -> CellOutcome {
    let Some(policy) = &spec.policy else {
        return CellOutcome::fail("profile cell without a policy axis");
    };
    let collect_spec = autarky_profile::CollectSpec {
        workload: spec.workload.clone(),
        policy: policy.clone(),
        scale: spec.params.scale,
    };
    let got = match autarky_profile::collect(&collect_spec) {
        Ok(got) => got,
        Err(e) => return CellOutcome::fail(format!("profile collection failed: {e}")),
    };
    // Simulated-cycle metrics only: the wall-clock account in
    // `got.wall` is host time and must never reach the journal.
    let p = &got.profile;
    let mut metrics = vec![
        ("ops".to_owned(), p.ops as f64),
        ("total_cycles".to_owned(), p.total_cycles as f64),
        ("attributed_pct".to_owned(), p.attributed_pct()),
        ("residual_pct".to_owned(), p.residual_pct()),
        ("orphan_cycles".to_owned(), p.orphan_cycles as f64),
        ("faults".to_owned(), p.faults as f64),
        ("fault_p50_cycles".to_owned(), p.fault_latency.p50 as f64),
        ("fault_p99_cycles".to_owned(), p.fault_latency.p99 as f64),
        (
            "hot_path_cycles_per_fault".to_owned(),
            p.hot_path_cycles_per_fault(),
        ),
    ];
    let mut failures = Vec::new();
    if !p.passes_residual_gate(spec.params.residual_max_pct) {
        failures.push(format!(
            "residual {:.2}% > {:.2}% allowed",
            p.residual_pct(),
            spec.params.residual_max_pct
        ));
    }
    let mut hot_line = String::new();
    if let Some(baseline_path) = &spec.params.baseline {
        match std::fs::read_to_string(baseline_path) {
            Err(e) => failures.push(format!("baseline {baseline_path} unreadable: {e}")),
            Ok(json) => match autarky_profile::baseline_hot_path(&json, &p.name()) {
                None => failures.push(format!(
                    "profile {:?} missing from baseline {baseline_path}",
                    p.name()
                )),
                Some(base) if base <= 0.0 => failures.push(format!(
                    "baseline hot path for {:?} is not positive",
                    p.name()
                )),
                Some(base) => {
                    let cur = p.hot_path_cycles_per_fault();
                    let delta_pct = (cur / base - 1.0) * 100.0;
                    metrics.push(("baseline_hot_path_cycles_per_fault".to_owned(), base));
                    metrics.push(("hot_path_delta_pct".to_owned(), delta_pct));
                    hot_line =
                        format!(", hot path {cur:.1} vs {base:.1} cycles/fault ({delta_pct:+.1}%)");
                    if delta_pct > spec.params.max_growth_pct {
                        failures.push(format!(
                            "hot path {delta_pct:+.1}% > +{:.1}% allowed",
                            spec.params.max_growth_pct
                        ));
                    }
                }
            },
        }
    }
    if failures.is_empty() {
        CellOutcome {
            gate: GateOutcome::Pass,
            metrics,
            reason: format!(
                "{:.2}% of {} cycles attributed across {} faults{hot_line}",
                p.attributed_pct(),
                p.total_cycles,
                p.faults
            ),
        }
    } else {
        CellOutcome {
            gate: GateOutcome::Fail,
            metrics,
            reason: failures.join("; "),
        }
    }
}

// --------------------------------------------------------------- figure

/// Fig5 iterations per scale unit (the figure's batch loop is 16 pages
/// per iteration, so scale 1 measures 160 fault/evict round trips).
const FIGURE_ITERS_PER_SCALE: u64 = 10;

fn run_figure(spec: &CellSpec) -> CellOutcome {
    if spec.workload != "fig5" {
        return CellOutcome::fail(format!("unknown figure {:?}", spec.workload));
    }
    let mechanism = match spec.policy.as_deref() {
        Some("sgx1") | None => PagingMechanism::Sgx1,
        Some("sgx2") => PagingMechanism::Sgx2,
        Some(other) => return CellOutcome::fail(format!("unknown figure mechanism {other:?}")),
    };
    let iters = FIGURE_ITERS_PER_SCALE * spec.params.scale as u64;
    let (fault, evict) = autarky_bench::fig5::measure(mechanism, iters);
    let metrics = vec![
        ("fault_preemption".to_owned(), fault.preemption as f64),
        ("fault_invocation".to_owned(), fault.invocation as f64),
        (
            "fault_runtime_overhead".to_owned(),
            fault.runtime_overhead as f64,
        ),
        ("fault_sgx_paging".to_owned(), fault.sgx_paging as f64),
        ("fault_total".to_owned(), fault.total() as f64),
        ("evict_preemption".to_owned(), evict.preemption as f64),
        ("evict_invocation".to_owned(), evict.invocation as f64),
        (
            "evict_runtime_overhead".to_owned(),
            evict.runtime_overhead as f64,
        ),
        ("evict_sgx_paging".to_owned(), evict.sgx_paging as f64),
        ("evict_total".to_owned(), evict.total() as f64),
    ];
    // The breakdown partitions the measured total by construction; the
    // gate is that the figure is non-degenerate — both operations
    // actually cost cycles (a zero side means the loop measured nothing).
    if fault.total() > 0 && evict.total() > 0 {
        CellOutcome {
            gate: GateOutcome::Pass,
            metrics,
            reason: format!(
                "{}: fault {} / evict {} cycles per page",
                fault.mech,
                fault.total(),
                evict.total()
            ),
        }
    } else {
        CellOutcome {
            gate: GateOutcome::Fail,
            metrics,
            reason: format!(
                "degenerate breakdown: fault {} / evict {} cycles per page",
                fault.total(),
                evict.total()
            ),
        }
    }
}

fn arrivals_for(shape: &str) -> Arrivals {
    match shape {
        // A burst longer than any cell's request count degenerates to a
        // fixed inter-arrival gap: steady, clocklike load.
        "steady" => Arrivals::Bursty {
            burst_gap_cycles: 200_000,
            burst_len: u32::MAX,
            idle_gap_cycles: 0,
        },
        "poisson" => Arrivals::Poisson {
            mean_gap_cycles: 200_000,
        },
        // Matches the fleet smoke scenario: tight bursts, long idles.
        _ => Arrivals::Bursty {
            burst_gap_cycles: 20_000,
            burst_len: 25,
            idle_gap_cycles: 30_000_000,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::SuiteParams;

    #[test]
    fn bench_cell_without_baseline_is_informational() {
        let spec = CellSpec::new(
            CellKind::Bench,
            None,
            "spell".into(),
            None,
            None,
            None,
            None,
            SuiteParams::default(),
        );
        let out = execute_cell(&spec);
        assert_eq!(out.gate, GateOutcome::Info);
        assert!(out.metrics.iter().any(|(k, _)| k == "cycles_per_op"));
    }

    #[test]
    fn bench_cell_fails_on_unreadable_baseline() {
        let spec = CellSpec::new(
            CellKind::Bench,
            None,
            "spell".into(),
            None,
            None,
            None,
            None,
            SuiteParams {
                baseline: Some("/nonexistent/baseline.json".into()),
                ..SuiteParams::default()
            },
        );
        let out = execute_cell(&spec);
        assert_eq!(out.gate, GateOutcome::Fail);
        assert!(out.reason.contains("unreadable"));
    }

    #[test]
    fn replay_quiet_cell_is_deterministic() {
        let spec = CellSpec::new(
            CellKind::Replay,
            Some("clusters".into()),
            "spell".into(),
            None,
            Some("quiet".into()),
            None,
            Some(1),
            SuiteParams::default(),
        );
        let out = execute_cell(&spec);
        assert_eq!(out.gate, GateOutcome::Pass, "reason: {}", out.reason);
        assert!(out.reason.contains("deterministic"));
    }

    #[test]
    fn leakage_cell_reports_mi() {
        let spec = CellSpec::new(
            CellKind::Leakage,
            Some("baseline".into()),
            "jpeg".into(),
            None,
            None,
            None,
            None,
            SuiteParams::default(),
        );
        let out = execute_cell(&spec);
        // The unprotected baseline must leak, so this cell gates Pass.
        assert_eq!(out.gate, GateOutcome::Pass, "reason: {}", out.reason);
        assert!(out.metrics.iter().any(|(k, _)| k == "mi_bits"));
    }

    #[test]
    fn profile_cell_gates_on_residual_and_reports_hot_path() {
        let spec = CellSpec::new(
            CellKind::Profile,
            Some("clusters".into()),
            "spell".into(),
            None,
            None,
            None,
            None,
            SuiteParams::default(),
        );
        let out = execute_cell(&spec);
        assert_eq!(out.gate, GateOutcome::Pass, "reason: {}", out.reason);
        for key in [
            "attributed_pct",
            "residual_pct",
            "hot_path_cycles_per_fault",
        ] {
            assert!(
                out.metrics.iter().any(|(k, _)| k == key),
                "missing metric {key}: {:?}",
                out.metrics
            );
        }
        // No host wall-clock metric may reach the journal.
        assert!(
            !out.metrics.iter().any(|(k, _)| k.contains("wall")),
            "wall-clock leaked into metrics: {:?}",
            out.metrics
        );
    }

    #[test]
    fn profile_cell_fails_on_impossible_residual_gate() {
        let spec = CellSpec::new(
            CellKind::Profile,
            Some("clusters".into()),
            "paging".into(),
            None,
            None,
            None,
            None,
            SuiteParams {
                residual_max_pct: -0.5,
                ..SuiteParams::default()
            },
        );
        let out = execute_cell(&spec);
        assert_eq!(out.gate, GateOutcome::Fail);
        assert!(out.reason.contains("residual"), "reason: {}", out.reason);
    }

    #[test]
    fn figure_cell_reports_the_fig5_breakdown() {
        let spec = CellSpec::new(
            CellKind::Figure,
            Some("sgx1".into()),
            "fig5".into(),
            None,
            None,
            None,
            None,
            SuiteParams::default(),
        );
        let out = execute_cell(&spec);
        assert_eq!(out.gate, GateOutcome::Pass, "reason: {}", out.reason);
        let get = |key: &str| {
            out.metrics
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric {key}"))
        };
        // Components partition the totals exactly (fig5's invariant).
        assert_eq!(
            get("fault_total"),
            get("fault_preemption")
                + get("fault_invocation")
                + get("fault_runtime_overhead")
                + get("fault_sgx_paging")
        );
        assert!(get("evict_total") > 0.0);
    }

    #[test]
    fn fleet_quiet_cell_accounts_every_request() {
        let spec = CellSpec::new(
            CellKind::Fleet,
            None,
            "kvstore".into(),
            Some(192),
            Some("quiet".into()),
            Some("steady".into()),
            Some(1),
            SuiteParams {
                requests: 40,
                ..SuiteParams::default()
            },
        );
        let out = execute_cell(&spec);
        assert_eq!(out.gate, GateOutcome::Pass, "reason: {}", out.reason);
        assert!(out.metrics.iter().any(|(k, _)| k == "p99_worst_cycles"));
    }
}
