//! Run a declarative experiment campaign.
//!
//! ```text
//! campaign --config PATH [--out DIR] [--jobs N] [--bench-history PATH]
//!          [--dry-run] [--fresh] [--quiet]
//! ```
//!
//! Expands the config's matrix into content-addressed cells, executes
//! them in parallel, journals every completion into `DIR/journal.log`
//! (so a killed campaign resumes where it stopped), and writes
//! `DIR/report.json` + `DIR/report.md`.
//!
//! `--bench-history PATH` appends one JSONL line per invocation —
//! this campaign's bench cycles/op keyed by workload — to `PATH`, and
//! renders the accumulated trajectory as a "Cycles/op trend" section
//! in `report.md`. Without the flag nothing is appended and the report
//! bytes are a pure function of the cell outcomes (the resume
//! byte-identity checks rely on that).
//!
//! Exit code: `0` when every gated cell passed, `1` when any gate
//! failed, `2` on usage/config errors. `--dry-run` prints the expanded
//! cell list and exits 0 without running anything. `--fresh` deletes an
//! existing journal first, forcing every cell to re-run.

use std::path::PathBuf;
use std::process::ExitCode;

use autarky_campaign::{
    execute_cell, render_bench_trend, run_cells, CampaignConfig, CampaignReport, Journal,
};

fn die(msg: &str) -> ! {
    eprintln!("campaign: {msg}");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config_path: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut jobs: usize = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut bench_history: Option<String> = None;
    let mut dry_run = false;
    let mut fresh = false;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                i += 1;
                config_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--config needs a path")),
                );
            }
            "--out" => {
                i += 1;
                out_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a directory")),
                );
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--jobs needs a positive integer"));
            }
            "--bench-history" => {
                i += 1;
                bench_history = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--bench-history needs a path")),
                );
            }
            "--dry-run" => dry_run = true,
            "--fresh" => fresh = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: campaign --config PATH [--out DIR] [--jobs N] \
                     [--bench-history PATH] [--dry-run] [--fresh] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    let Some(config_path) = config_path else {
        die("--config is required");
    };

    let text = std::fs::read_to_string(&config_path)
        .unwrap_or_else(|e| die(&format!("read {config_path}: {e}")));
    let config = CampaignConfig::from_toml(&text).unwrap_or_else(|e| die(&e.to_string()));
    let cells = config.expand();

    if dry_run {
        println!(
            "campaign {:?}: {} cells from {} suite(s)",
            config.name,
            cells.len(),
            config.suites.len()
        );
        for cell in &cells {
            println!("{cell}");
        }
        return ExitCode::SUCCESS;
    }

    let out_dir =
        PathBuf::from(out_dir.unwrap_or_else(|| format!("campaign-runs/{}", config.name)));
    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| die(&format!("create {}: {e}", out_dir.display())));
    let journal_path = out_dir.join("journal.log");
    if fresh {
        match std::fs::remove_file(&journal_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => die(&format!("remove {}: {e}", journal_path.display())),
        }
    }
    let mut journal = Journal::open(&journal_path)
        .unwrap_or_else(|e| die(&format!("open {}: {e}", journal_path.display())));
    let already = cells
        .iter()
        .filter(|c| journal.get(&c.id).is_some())
        .count();
    if !quiet {
        eprintln!(
            "campaign {:?}: {} cells, {} journaled, {} to run ({} jobs)",
            config.name,
            cells.len(),
            already,
            cells.len() - already,
            jobs
        );
    }

    let runs = run_cells(&cells, jobs, &mut journal, &execute_cell, quiet);
    let report = CampaignReport {
        name: config.name.clone(),
        runs,
    };

    let json_path = out_dir.join("report.json");
    let md_path = out_dir.join("report.md");
    std::fs::write(&json_path, report.to_json())
        .unwrap_or_else(|e| die(&format!("write {}: {e}", json_path.display())));
    let mut markdown = report.to_markdown();
    if let Some(history_path) = &bench_history {
        // Append this run's bench line first, then render the whole
        // accumulated trajectory (including the new point).
        if let Some(line) = report.bench_history_line() {
            let mut contents = match std::fs::read_to_string(history_path) {
                Ok(contents) => contents,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => die(&format!("read {history_path}: {e}")),
            };
            if !contents.is_empty() && !contents.ends_with('\n') {
                contents.push('\n');
            }
            contents.push_str(&line);
            contents.push('\n');
            std::fs::write(history_path, &contents)
                .unwrap_or_else(|e| die(&format!("write {history_path}: {e}")));
            markdown.push_str(&render_bench_trend(&contents));
        }
    }
    std::fs::write(&md_path, markdown)
        .unwrap_or_else(|e| die(&format!("write {}: {e}", md_path.display())));

    println!(
        "campaign {:?}: {} cells — {} passed, {} failed, {} info — {}",
        config.name,
        report.runs.len(),
        report.passed(),
        report.failed(),
        report.info(),
        if report.pass() { "PASS" } else { "FAIL" }
    );
    println!("report: {}", json_path.display());
    if report.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
