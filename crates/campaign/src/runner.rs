//! The parallel cell executor with journaled resume.
//!
//! Cells are independent simulated experiments, so the runner is a
//! plain work-stealing pool over `std::thread`: one shared cursor, N
//! workers, each executing cells to completion and appending to the
//! journal under a mutex. Determinism does not depend on scheduling —
//! every cell derives its own seed from its content address — so the
//! final report is identical at any `--jobs` level, and identical
//! across an interrupt/resume boundary (the resume property tests pin
//! both).
//!
//! A panicking cell is caught and converted into a failing outcome
//! rather than tearing down the campaign: one broken experiment must
//! not cost the other cores their finished work.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cell::{CellOutcome, CellSpec};
use crate::journal::Journal;

/// One cell's result within a finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRun {
    /// The spec that ran.
    pub spec: CellSpec,
    /// Its outcome (fresh or journaled).
    pub outcome: CellOutcome,
    /// Whether the outcome came from the journal (skipped execution).
    pub resumed: bool,
}

/// Execute `cells` with up to `jobs` worker threads, skipping cells the
/// journal already holds. Results come back in `cells` order regardless
/// of completion order. `quiet` suppresses the per-cell progress lines.
pub fn run_cells(
    cells: &[CellSpec],
    jobs: usize,
    journal: &mut Journal,
    exec: &(dyn Fn(&CellSpec) -> CellOutcome + Sync),
    quiet: bool,
) -> Vec<CellRun> {
    // Resolve resumed cells up front; queue the rest.
    let mut results: Vec<Option<CellRun>> = Vec::with_capacity(cells.len());
    let mut pending: Vec<usize> = Vec::new();
    for (i, spec) in cells.iter().enumerate() {
        match journal.get(&spec.id) {
            Some(outcome) => {
                if !quiet {
                    eprintln!("campaign: [journal] {spec} -> {}", outcome.gate.name());
                }
                results.push(Some(CellRun {
                    spec: spec.clone(),
                    outcome: outcome.clone(),
                    resumed: true,
                }));
            }
            None => {
                results.push(None);
                pending.push(i);
            }
        }
    }

    let workers = jobs.max(1).min(pending.len().max(1));
    let cursor = AtomicUsize::new(0);
    // Block scope: `shared` must die before `results` can be consumed.
    {
        let shared = Mutex::new((journal, &mut results));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = pending.get(slot) else {
                        return;
                    };
                    let spec = &cells[index];
                    let outcome = execute_guarded(spec, exec);
                    let mut guard = match shared.lock() {
                        Ok(guard) => guard,
                        // A worker panicked between lock and unlock; the
                        // journal is still append-consistent, so keep going.
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    let (journal, results) = &mut *guard;
                    if let Err(e) = journal.record(&spec.id, &outcome) {
                        eprintln!("campaign: journal append failed for {}: {e}", spec.id);
                    }
                    if !quiet {
                        eprintln!("campaign: [run] {spec} -> {}", outcome.gate.name());
                    }
                    results[index] = Some(CellRun {
                        spec: spec.clone(),
                        outcome,
                        resumed: false,
                    });
                });
            }
        });
    }

    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|| unreachable!("every cell resolved by the pool")))
        .collect()
}

/// Run one cell, converting a panic into a failing outcome.
fn execute_guarded(
    spec: &CellSpec,
    exec: &(dyn Fn(&CellSpec) -> CellOutcome + Sync),
) -> CellOutcome {
    match std::panic::catch_unwind(AssertUnwindSafe(|| exec(spec))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            CellOutcome::fail(format!("cell panicked: {msg}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKind, GateOutcome, SuiteParams};

    fn spec(workload: &str) -> CellSpec {
        CellSpec::new(
            CellKind::Bench,
            None,
            workload.into(),
            None,
            None,
            None,
            None,
            SuiteParams::default(),
        )
    }

    #[test]
    fn pool_runs_everything_and_preserves_order() {
        let cells: Vec<CellSpec> = ["paging", "spell", "kvstore", "font"]
            .iter()
            .map(|w| spec(w))
            .collect();
        let mut journal = Journal::ephemeral();
        let runs = run_cells(
            &cells,
            3,
            &mut journal,
            &|c| CellOutcome {
                gate: GateOutcome::Pass,
                metrics: vec![],
                reason: format!("ran {}", c.workload),
            },
            true,
        );
        assert_eq!(runs.len(), 4);
        for (run, cell) in runs.iter().zip(&cells) {
            assert_eq!(run.spec.id, cell.id, "order preserved");
            assert_eq!(run.outcome.reason, format!("ran {}", cell.workload));
            assert!(!run.resumed);
        }
        assert_eq!(journal.len(), 4, "every completion journaled");
    }

    #[test]
    fn journaled_cells_are_skipped() {
        let cells = vec![spec("paging"), spec("font")];
        let mut journal = Journal::ephemeral();
        journal
            .record(
                &cells[0].id,
                &CellOutcome {
                    gate: GateOutcome::Info,
                    metrics: vec![],
                    reason: "from journal".into(),
                },
            )
            .expect("ephemeral record");
        let executed = Mutex::new(Vec::new());
        let runs = run_cells(
            &cells,
            2,
            &mut journal,
            &|c| {
                executed.lock().expect("lock").push(c.workload.clone());
                CellOutcome {
                    gate: GateOutcome::Pass,
                    metrics: vec![],
                    reason: "fresh".into(),
                }
            },
            true,
        );
        assert_eq!(
            *executed.lock().expect("lock"),
            vec!["font".to_owned()],
            "only the unjournaled cell executed"
        );
        assert!(runs[0].resumed);
        assert_eq!(runs[0].outcome.reason, "from journal");
        assert!(!runs[1].resumed);
    }

    #[test]
    fn a_panicking_cell_fails_without_killing_the_pool() {
        let cells = vec![spec("paging"), spec("font")];
        let mut journal = Journal::ephemeral();
        let runs = run_cells(
            &cells,
            2,
            &mut journal,
            &|c| {
                if c.workload == "paging" {
                    panic!("synthetic cell failure");
                }
                CellOutcome {
                    gate: GateOutcome::Pass,
                    metrics: vec![],
                    reason: "ok".into(),
                }
            },
            true,
        );
        assert_eq!(runs[0].outcome.gate, GateOutcome::Fail);
        assert!(runs[0].outcome.reason.contains("synthetic cell failure"));
        assert_eq!(runs[1].outcome.gate, GateOutcome::Pass);
    }
}
