//! A minimal TOML-subset parser for campaign configs.
//!
//! The offline build carries no serde/toml dependency, so — like the
//! `os-sim::wire` codec — this is a hand-rolled reader of exactly the
//! grammar the shipped configs use:
//!
//! * `# comment` lines and trailing comments outside strings;
//! * `[table]` headers and `[[array-of-tables]]` headers;
//! * `key = value` pairs with bare keys;
//! * values: `"string"`, integer (with `_` separators), float, boolean,
//!   and flat arrays of those scalars.
//!
//! Nested inline tables, dotted keys, datetimes, and multi-line strings
//! are intentionally out of scope; encountering anything outside the
//! subset is a hard [`TomlError`], never a silent skip — a config typo
//! must not quietly drop an axis from a sweep.

use std::fmt;

/// A scalar or flat-array TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer (underscore separators accepted).
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array of scalars.
    Array(Vec<Value>),
}

/// One `[section]` (or `[[section]]` element): its key/value pairs in
/// file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// `key = value` pairs, in file order.
    pub entries: Vec<(String, Value)>,
}

/// A parsed document: named sections in file order. Keys that appear
/// before any header land in a section named `""`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// `(name, is_array_element, table)` triples in file order.
    pub sections: Vec<(String, bool, Table)>,
}

/// A parse failure with the offending line.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// What was expected.
    pub what: &'static str,
    /// 1-based line number.
    pub line_no: usize,
    /// The offending line text.
    pub line: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "toml parse error at line {}: expected {} in {:?}",
            self.line_no, self.what, self.line
        )
    }
}

impl std::error::Error for TomlError {}

impl Table {
    fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the table carries `key` at all.
    pub fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// A string value.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// An integer value (floats are not coerced).
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// A float value (integers coerce).
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::Float(v)) => Some(*v),
            Some(Value::Int(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// A boolean value.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Value::Bool(v)) => Some(*v),
            _ => None,
        }
    }

    /// An array of strings (a bare string coerces to a one-element
    /// list, so `workload = "spell"` and `workload = ["spell"]` mean
    /// the same axis).
    pub fn get_strs(&self, key: &str) -> Option<Vec<String>> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(vec![s.clone()]),
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }

    /// An array of unsigned integers (a bare integer coerces).
    pub fn get_u64s(&self, key: &str) -> Option<Vec<u64>> {
        let as_u64 = |v: &Value| match v {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        };
        match self.get(key) {
            Some(v @ Value::Int(_)) => Some(vec![as_u64(v)?]),
            Some(Value::Array(items)) => items.iter().map(as_u64).collect(),
            _ => None,
        }
    }
}

impl Document {
    /// The single section with this name, if present (first match).
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.sections
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, t)| t)
    }

    /// Every `[[name]]` element, in file order.
    pub fn array_tables(&self, name: &str) -> Vec<&Table> {
        self.sections
            .iter()
            .filter(|(n, is_array, _)| n == name && *is_array)
            .map(|(_, _, t)| t)
            .collect()
    }
}

/// Parse a document in the supported subset.
pub fn parse(input: &str) -> Result<Document, TomlError> {
    let mut doc = Document::default();
    let mut current: Option<usize> = None;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &'static str| TomlError {
            what,
            line_no,
            line: raw.trim().to_owned(),
        };
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest.strip_suffix("]]").ok_or_else(|| err("']]'"))?.trim();
            if name.is_empty() {
                return Err(err("section name"));
            }
            doc.sections.push((name.to_owned(), true, Table::default()));
            current = Some(doc.sections.len() - 1);
        } else if let Some(rest) = line.strip_prefix('[') {
            let name = rest.strip_suffix(']').ok_or_else(|| err("']'"))?.trim();
            if name.is_empty() {
                return Err(err("section name"));
            }
            doc.sections
                .push((name.to_owned(), false, Table::default()));
            current = Some(doc.sections.len() - 1);
        } else {
            let (key, value) = line.split_once('=').ok_or_else(|| err("key = value"))?;
            let key = key.trim();
            if key.is_empty()
                || !key
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(err("bare key"));
            }
            let value = parse_value(value.trim()).ok_or_else(|| err("scalar or array value"))?;
            let section = match current {
                Some(i) => i,
                None => {
                    doc.sections.push((String::new(), false, Table::default()));
                    current = Some(doc.sections.len() - 1);
                    doc.sections.len() - 1
                }
            };
            doc.sections[section]
                .2
                .entries
                .push((key.to_owned(), value));
        }
    }
    Ok(doc)
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Option<Value> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest.strip_suffix(']')?;
        let mut items = Vec::new();
        for part in split_array(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let item = parse_value(part)?;
            if matches!(item, Value::Array(_)) {
                return None; // nested arrays are out of subset
            }
            items.push(item);
        }
        return Some(Value::Array(items));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest.strip_suffix('"')?;
        if inner.contains('"') || inner.contains('\\') {
            return None; // escapes are out of subset
        }
        return Some(Value::Str(inner.to_owned()));
    }
    match text {
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        _ => {}
    }
    let plain = text.replace('_', "");
    if let Ok(v) = plain.parse::<i64>() {
        return Some(Value::Int(v));
    }
    // Floats must look like floats (digit-dot-digit or exponent), so
    // stray words never parse as numbers.
    if plain.contains('.') || plain.contains('e') || plain.contains('E') {
        if let Ok(v) = plain.parse::<f64>() {
            return Some(Value::Float(v));
        }
    }
    None
}

/// Split an array body on top-level commas (strings may contain commas).
fn split_array(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_scalars() {
        let doc = parse(
            r#"
# top comment
[campaign]
name = "smoke"  # trailing comment
jobs = 4
strict = true

[matrix]
policy = ["clusters", "rate-limit"]
seed = [1, 2, 3]
enclave_size = 192
growth = 10.5
gap = 200_000

[[suite]]
kind = "bench"

[[suite]]
kind = "replay"
"#,
        )
        .expect("parses");
        let campaign = doc.table("campaign").expect("campaign section");
        assert_eq!(campaign.get_str("name"), Some("smoke"));
        assert_eq!(campaign.get_i64("jobs"), Some(4));
        assert_eq!(campaign.get_bool("strict"), Some(true));
        let matrix = doc.table("matrix").expect("matrix section");
        assert_eq!(
            matrix.get_strs("policy"),
            Some(vec!["clusters".to_owned(), "rate-limit".to_owned()])
        );
        assert_eq!(matrix.get_u64s("seed"), Some(vec![1, 2, 3]));
        assert_eq!(matrix.get_u64s("enclave_size"), Some(vec![192]));
        assert_eq!(matrix.get_f64("growth"), Some(10.5));
        assert_eq!(matrix.get_i64("gap"), Some(200_000));
        let suites = doc.array_tables("suite");
        assert_eq!(suites.len(), 2);
        assert_eq!(suites[0].get_str("kind"), Some("bench"));
        assert_eq!(suites[1].get_str("kind"), Some("replay"));
    }

    #[test]
    fn string_coerces_to_one_element_axis() {
        let doc = parse("[m]\nworkload = \"spell\"\n").expect("parses");
        assert_eq!(
            doc.table("m").unwrap().get_strs("workload"),
            Some(vec!["spell".to_owned()])
        );
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = parse("[m]\nname = \"a # b\"\n").expect("parses");
        assert_eq!(doc.table("m").unwrap().get_str("name"), Some("a # b"));
    }

    #[test]
    fn rejects_out_of_subset_lines() {
        assert!(parse("[m]\nkey\n").is_err(), "bare word");
        assert!(parse("[m\nk = 1\n").is_err(), "unterminated header");
        assert!(parse("[m]\nk = [[1]]\n").is_err(), "nested array");
        assert!(parse("[m]\nk = {a = 1}\n").is_err(), "inline table");
        assert!(parse("[m]\nk = maybe\n").is_err(), "stray word value");
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse("[m]\nok = 1\nbad line\n").unwrap_err();
        assert_eq!(err.line_no, 3);
        assert!(err.to_string().contains("line 3"));
    }
}
