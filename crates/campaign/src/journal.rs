//! The resume journal: an append-only, line-oriented record of every
//! completed cell.
//!
//! One line per finished cell, flushed immediately, each guarded by a
//! truncation checksum (see [`crate::cell::decode_line`]). Resume is
//! therefore trivial and safe: re-expand the config, skip every cell
//! whose content address already has a verified line, re-run the rest.
//! A cell whose definition changed gets a new address, so its stale
//! line is never matched; a line half-written at the moment of a crash
//! fails its checksum and the cell re-runs.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::cell::{decode_line, CellOutcome};

/// The journal header line (versioned so a future format change can
/// refuse to resume from an incompatible file).
pub const JOURNAL_HEADER: &str = "# autarky campaign journal v1";

/// An open journal: completed outcomes keyed by content address, plus
/// the append handle.
pub struct Journal {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    done: BTreeMap<String, CellOutcome>,
}

impl Journal {
    /// Open (or create) the journal at `path`, loading every verified
    /// completed-cell line. Malformed or truncated lines are skipped —
    /// their cells simply re-run.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut done = BTreeMap::new();
        let mut fresh = true;
        if let Ok(text) = std::fs::read_to_string(path) {
            fresh = text.is_empty();
            for line in text.lines() {
                if let Some((id, outcome)) = decode_line(line) {
                    done.insert(id, outcome);
                }
            }
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut writer = BufWriter::new(file);
        if fresh {
            writeln!(writer, "{JOURNAL_HEADER}")?;
            writer.flush()?;
        }
        Ok(Self {
            path: path.to_owned(),
            writer: Some(writer),
            done,
        })
    }

    /// An in-memory journal (tests, `--dry-run`): nothing persists.
    pub fn ephemeral() -> Self {
        Self {
            path: PathBuf::new(),
            writer: None,
            done: BTreeMap::new(),
        }
    }

    /// Path this journal appends to (empty for ephemeral journals).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The completed outcome for a cell, if journaled.
    pub fn get(&self, id: &str) -> Option<&CellOutcome> {
        self.done.get(id)
    }

    /// Completed cells on record.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether nothing has completed yet.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Record one completed cell: append + flush, then remember it.
    pub fn record(&mut self, id: &str, outcome: &CellOutcome) -> std::io::Result<()> {
        if let Some(writer) = &mut self.writer {
            writeln!(writer, "{}", outcome.encode_line(id))?;
            writer.flush()?;
        }
        self.done.insert(id.to_owned(), outcome.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::GateOutcome;

    fn outcome(reason: &str) -> CellOutcome {
        CellOutcome {
            gate: GateOutcome::Pass,
            metrics: vec![("x".into(), 1.5)],
            reason: reason.into(),
        }
    }

    #[test]
    fn journal_roundtrips_and_resumes() {
        let dir = std::env::temp_dir().join(format!("ay-campaign-journal-{}", std::process::id()));
        let path = dir.join("journal.log");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut j = Journal::open(&path).expect("opens");
            assert!(j.is_empty());
            j.record("aaaaaaaaaaaa", &outcome("one")).expect("records");
            j.record("bbbbbbbbbbbb", &outcome("two")).expect("records");
        }
        let j = Journal::open(&path).expect("reopens");
        assert_eq!(j.len(), 2);
        assert_eq!(j.get("aaaaaaaaaaaa").expect("a").reason, "one");
        assert_eq!(j.get("bbbbbbbbbbbb").expect("b").reason, "two");
        assert!(j.get("cccccccccccc").is_none());
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.starts_with(JOURNAL_HEADER));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_line_is_dropped_on_reopen() {
        let dir = std::env::temp_dir().join(format!("ay-campaign-trunc-{}", std::process::id()));
        let path = dir.join("journal.log");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut j = Journal::open(&path).expect("opens");
            j.record("aaaaaaaaaaaa", &outcome("kept")).expect("records");
            j.record("bbbbbbbbbbbb", &outcome("torn")).expect("records");
        }
        // Simulate a crash mid-append: chop the last line in half.
        let text = std::fs::read_to_string(&path).expect("read");
        let cut = text.len() - 17;
        std::fs::write(&path, &text[..cut]).expect("truncate");
        let j = Journal::open(&path).expect("reopens");
        assert_eq!(j.len(), 1, "torn line dropped");
        assert!(j.get("aaaaaaaaaaaa").is_some());
        assert!(j.get("bbbbbbbbbbbb").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
