//! The campaign cell model: one cell = one gated experiment at fixed
//! matrix coordinates, identified by a content address.
//!
//! A cell's identity is the sha256 of its canonical spec line — the
//! kind, every axis value the kind consumes, and every gate parameter
//! that can change its verdict. Two campaign runs (or two resumes of
//! one run) that expand the same config therefore produce the same
//! IDs, which is what lets the journal skip completed cells safely:
//! any config edit that could change a cell's outcome changes its
//! address, and the stale journal entry is simply never matched again.

use std::fmt;

/// The experiment kinds a cell can run (each wraps one existing
/// subsystem as a library call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// Telemetry perf suite workload with a cycles/op baseline gate.
    Bench,
    /// Leakage-audit cell with its bits/run gate.
    Leakage,
    /// Flight-recorder record → replay → diff determinism check.
    Replay,
    /// Fleet load-gen run with accounting/failover gates and latency
    /// percentiles.
    Fleet,
    /// Cycle-attribution profile with residual and hot-path gates.
    Profile,
    /// Paper-figure reproduction (currently fig5's latency breakdown).
    Figure,
    /// Watchtower fleet run (watched twice for artifact byte-identity)
    /// with alert-count and false-positive gates.
    Watch,
}

impl CellKind {
    /// Every kind, in report order.
    pub const ALL: [CellKind; 7] = [
        CellKind::Bench,
        CellKind::Leakage,
        CellKind::Replay,
        CellKind::Fleet,
        CellKind::Profile,
        CellKind::Figure,
        CellKind::Watch,
    ];

    /// Stable config/report tag.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Bench => "bench",
            CellKind::Leakage => "leakage",
            CellKind::Replay => "replay",
            CellKind::Fleet => "fleet",
            CellKind::Profile => "profile",
            CellKind::Figure => "figure",
            CellKind::Watch => "watch",
        }
    }

    /// Resolve a config tag.
    pub fn from_name(tag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == tag)
    }
}

/// Per-suite gate and sizing parameters (kind-specific fields are
/// ignored — and excluded from the content address — for other kinds).
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteParams {
    /// Bench: perf-suite scale factor.
    pub scale: u32,
    /// Bench: baseline JSON path the regression gate reads (relative to
    /// the invocation directory); `None` makes bench cells ungated.
    pub baseline: Option<String>,
    /// Bench: max tolerated cycles/op growth vs the baseline, percent.
    pub max_growth_pct: f64,
    /// Leakage: seeds per secret class (≥ 2).
    pub samples: usize,
    /// Leakage: minimum MI the unprotected baseline must leak.
    pub baseline_min_mi: f64,
    /// Leakage: maximum MI a protected configuration may leak.
    pub oram_max_mi: f64,
    /// Replay: secret class driven through the schedule.
    pub secret: u32,
    /// Fleet: requests offered per member.
    pub requests: usize,
    /// Fleet: EPC frames shared by the members.
    pub epc_frames: usize,
    /// Profile: max unattributed-cycle share, percent.
    pub residual_max_pct: f64,
    /// Watch: minimum alerts a staged storm cell must fire.
    pub min_alerts: u64,
    /// Watch: maximum alerts a quiet (no-injection) cell may fire —
    /// the false-positive gate.
    pub max_false_alerts: u64,
}

impl Default for SuiteParams {
    fn default() -> Self {
        Self {
            scale: 1,
            baseline: None,
            max_growth_pct: 10.0,
            samples: 2,
            baseline_min_mi: 0.9,
            oram_max_mi: 0.25,
            secret: 0,
            requests: 60,
            epc_frames: 2048,
            residual_max_pct: 5.0,
            min_alerts: 1,
            max_false_alerts: 0,
        }
    }
}

/// One expanded cell: kind + the axis values it consumes + gate params.
///
/// Axes the kind does not consume are `None` and render as `-`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Content address (first 12 hex chars of sha256 of [`canon`]).
    ///
    /// [`canon`]: CellSpec::canon
    pub id: String,
    /// Experiment kind.
    pub kind: CellKind,
    /// Protection policy (leakage, replay).
    pub policy: Option<String>,
    /// Workload (all kinds).
    pub workload: String,
    /// Enclave heap sizing in pages (fleet).
    pub enclave_size: Option<u64>,
    /// Named fault plan (replay, fleet).
    pub fault_plan: Option<String>,
    /// Traffic shape (fleet).
    pub traffic_shape: Option<String>,
    /// Seed axis value (replay, fleet).
    pub seed: Option<u64>,
    /// Gate parameters inherited from the suite.
    pub params: SuiteParams,
}

impl CellSpec {
    /// Build a spec and stamp its content address.
    // One parameter per matrix axis: a builder would obscure that the
    // argument list IS the axis list.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: CellKind,
        policy: Option<String>,
        workload: String,
        enclave_size: Option<u64>,
        fault_plan: Option<String>,
        traffic_shape: Option<String>,
        seed: Option<u64>,
        params: SuiteParams,
    ) -> Self {
        let mut spec = Self {
            id: String::new(),
            kind,
            policy,
            workload,
            enclave_size,
            fault_plan,
            traffic_shape,
            seed,
            params,
        };
        let digest = autarky_crypto::sha256(spec.canon().as_bytes());
        spec.id = digest[..6].iter().map(|b| format!("{b:02x}")).collect();
        spec
    }

    /// The canonical spec line the content address hashes: kind, the
    /// consumed axes, and every gate parameter that can change the
    /// verdict. Unconsumed axes are deliberately absent so e.g. a bench
    /// cell's address is stable no matter what the seed axis holds.
    pub fn canon(&self) -> String {
        let mut out = format!("campaign-cell-v1 kind={}", self.kind.name());
        match self.kind {
            CellKind::Bench => {
                out.push_str(&format!(
                    " workload={} scale={} baseline={} max_growth_pct={}",
                    self.workload,
                    self.params.scale,
                    self.params.baseline.as_deref().unwrap_or("-"),
                    self.params.max_growth_pct,
                ));
            }
            CellKind::Leakage => {
                out.push_str(&format!(
                    " policy={} workload={} samples={} baseline_min_mi={} oram_max_mi={}",
                    self.policy.as_deref().unwrap_or("-"),
                    self.workload,
                    self.params.samples,
                    self.params.baseline_min_mi,
                    self.params.oram_max_mi,
                ));
            }
            CellKind::Replay => {
                out.push_str(&format!(
                    " policy={} workload={} fault_plan={} seed={} secret={}",
                    self.policy.as_deref().unwrap_or("-"),
                    self.workload,
                    self.fault_plan.as_deref().unwrap_or("quiet"),
                    self.seed.unwrap_or(1),
                    self.params.secret,
                ));
            }
            CellKind::Fleet => {
                out.push_str(&format!(
                    " workload={} traffic_shape={} fault_plan={} enclave_size={} seed={} \
                     requests={} epc_frames={}",
                    self.workload,
                    self.traffic_shape.as_deref().unwrap_or("bursty"),
                    self.fault_plan.as_deref().unwrap_or("quiet"),
                    self.enclave_size.unwrap_or(192),
                    self.seed.unwrap_or(1),
                    self.params.requests,
                    self.params.epc_frames,
                ));
            }
            CellKind::Profile => {
                out.push_str(&format!(
                    " policy={} workload={} scale={} residual_max_pct={} baseline={} \
                     max_growth_pct={}",
                    self.policy.as_deref().unwrap_or("-"),
                    self.workload,
                    self.params.scale,
                    self.params.residual_max_pct,
                    self.params.baseline.as_deref().unwrap_or("-"),
                    self.params.max_growth_pct,
                ));
            }
            CellKind::Figure => {
                // The workload axis carries the figure name, the policy
                // axis the paging mechanism — keeps the matrix axes
                // reusable as more figures become cells.
                out.push_str(&format!(
                    " figure={} mechanism={} scale={}",
                    self.workload,
                    self.policy.as_deref().unwrap_or("sgx1"),
                    self.params.scale,
                ));
            }
            CellKind::Watch => {
                out.push_str(&format!(
                    " workload={} fault_plan={} seed={} requests={} min_alerts={} \
                     max_false_alerts={}",
                    self.workload,
                    self.fault_plan.as_deref().unwrap_or("quiet"),
                    self.seed.unwrap_or(1),
                    self.params.requests,
                    self.params.min_alerts,
                    self.params.max_false_alerts,
                ));
            }
        }
        out
    }

    /// Human-readable coordinates, `-` for unconsumed axes:
    /// `kind/policy/workload/enclave_size/fault_plan/traffic_shape/seed`.
    pub fn coords(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/{}/{}",
            self.kind.name(),
            self.policy.as_deref().unwrap_or("-"),
            self.workload,
            self.enclave_size
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            self.fault_plan.as_deref().unwrap_or("-"),
            self.traffic_shape.as_deref().unwrap_or("-"),
            self.seed
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
        )
    }

    /// Deterministic per-cell seed: a stable function of the content
    /// address and the seed axis, so every cell draws from its own
    /// stream no matter which worker thread runs it.
    pub fn derived_seed(&self) -> u64 {
        let digest = autarky_crypto::sha256(self.canon().as_bytes());
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&digest[8..16]);
        u64::from_le_bytes(bytes) ^ self.seed.unwrap_or(0)
    }
}

impl fmt::Display for CellSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id, self.coords())
    }
}

/// A cell's gate verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOutcome {
    /// Threshold held.
    Pass,
    /// Threshold violated (fails the campaign).
    Fail,
    /// Informational cell with no threshold.
    Info,
}

impl GateOutcome {
    /// Stable journal/report tag.
    pub fn name(self) -> &'static str {
        match self {
            GateOutcome::Pass => "pass",
            GateOutcome::Fail => "fail",
            GateOutcome::Info => "info",
        }
    }

    fn from_name(tag: &str) -> Option<Self> {
        match tag {
            "pass" => Some(GateOutcome::Pass),
            "fail" => Some(GateOutcome::Fail),
            "info" => Some(GateOutcome::Info),
            _ => None,
        }
    }
}

/// What one executed cell produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Gate verdict.
    pub gate: GateOutcome,
    /// Named metrics (cycles/op, MI bits, p99, …), in emit order.
    pub metrics: Vec<(String, f64)>,
    /// Human-readable gate explanation.
    pub reason: String,
}

impl CellOutcome {
    /// A failure outcome with no metrics.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self {
            gate: GateOutcome::Fail,
            metrics: Vec::new(),
            reason: reason.into(),
        }
    }

    /// Serialize as one journal line (round-trips via [`decode_line`]).
    ///
    /// Metric values use Rust's shortest-round-trip `f64` display, so a
    /// resumed campaign reconstructs bit-identical numbers and the final
    /// report matches an uninterrupted run byte for byte.
    pub fn encode_line(&self, id: &str) -> String {
        let metrics = if self.metrics.is_empty() {
            "-".to_owned()
        } else {
            self.metrics
                .iter()
                .map(|(k, v)| format!("{k}:{}", json_f64(*v)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let body = format!(
            "cell id={id} gate={} metrics={metrics} reason={}",
            self.gate.name(),
            escape(&self.reason)
        );
        format!("{body} sum={}", line_sum(&body))
    }
}

/// First 4 bytes of sha256 over a journal line body, hex — the
/// truncation guard: a crash mid-append must leave a line that fails
/// to verify, never one that parses to a shortened outcome.
fn line_sum(body: &str) -> String {
    autarky_crypto::sha256(body.as_bytes())[..4]
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

/// Parse one `cell …` journal line into `(id, outcome)`. Returns `None`
/// for malformed or truncated lines (a crash mid-append leaves at most
/// one of those, which resume then simply re-runs).
pub fn decode_line(line: &str) -> Option<(String, CellOutcome)> {
    let (body, sum) = line.rsplit_once(" sum=")?;
    if line_sum(body) != sum {
        return None;
    }
    let rest = body.strip_prefix("cell ")?;
    let mut id = None;
    let mut gate = None;
    let mut metrics = Vec::new();
    let mut reason = None;
    for field in rest.split_whitespace() {
        let (key, value) = field.split_once('=')?;
        match key {
            "id" => id = Some(value.to_owned()),
            "gate" => gate = Some(GateOutcome::from_name(value)?),
            "metrics" => {
                if value != "-" {
                    for pair in value.split(',') {
                        let (k, v) = pair.split_once(':')?;
                        metrics.push((k.to_owned(), v.parse::<f64>().ok()?));
                    }
                }
            }
            "reason" => reason = Some(unescape(value)),
            _ => return None,
        }
    }
    Some((
        id?,
        CellOutcome {
            gate: gate?,
            metrics,
            reason: reason?,
        },
    ))
}

/// Finite journal/report float (JSON has no Infinity/NaN; mirror the
/// leakage report's sentinel).
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "1e308".to_owned()
    }
}

/// Percent-escape a free-text field into one whitespace-free token.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\t' => out.push_str("%09"),
            _ => out.push(c),
        }
    }
    if out.is_empty() {
        out.push_str("%20"); // a reason token must not be empty
    }
    out
}

fn unescape(token: &str) -> String {
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        match (hi, lo) {
            (Some(h), Some(l)) => {
                let byte = u8::from_str_radix(&format!("{h}{l}"), 16).unwrap_or(b'?');
                out.push(byte as char);
            }
            _ => out.push('?'),
        }
    }
    if out == " " {
        // The empty-reason sentinel.
        return String::new();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: CellKind) -> CellSpec {
        CellSpec::new(
            kind,
            Some("clusters".into()),
            "spell".into(),
            Some(192),
            Some("quiet".into()),
            Some("bursty".into()),
            Some(1),
            SuiteParams::default(),
        )
    }

    #[test]
    fn ids_are_stable_and_kind_sensitive() {
        let a = spec(CellKind::Replay);
        let b = spec(CellKind::Replay);
        assert_eq!(a.id, b.id, "same spec, same address");
        assert_eq!(a.id.len(), 12);
        let c = spec(CellKind::Leakage);
        assert_ne!(a.id, c.id, "kind is part of the address");
    }

    #[test]
    fn unconsumed_axes_do_not_perturb_the_address() {
        let a = spec(CellKind::Bench);
        let mut b = spec(CellKind::Bench);
        b.seed = Some(999);
        b.policy = Some("cached-oram".into());
        let b = CellSpec::new(
            b.kind,
            b.policy,
            b.workload,
            b.enclave_size,
            b.fault_plan,
            b.traffic_shape,
            b.seed,
            b.params,
        );
        assert_eq!(a.id, b.id, "bench consumes only workload + gate params");
    }

    #[test]
    fn gate_params_perturb_the_address() {
        let a = spec(CellKind::Leakage);
        let params = SuiteParams {
            oram_max_mi: 0.5,
            ..SuiteParams::default()
        };
        let b = CellSpec::new(
            CellKind::Leakage,
            Some("clusters".into()),
            "spell".into(),
            Some(192),
            Some("quiet".into()),
            Some("bursty".into()),
            Some(1),
            params,
        );
        assert_ne!(a.id, b.id, "a changed threshold re-addresses the cell");
    }

    #[test]
    fn outcome_roundtrips_through_the_journal_codec() {
        let outcome = CellOutcome {
            gate: GateOutcome::Pass,
            metrics: vec![
                ("cycles_per_op".into(), 38240.512),
                ("mi_bits".into(), 0.03125),
                ("inf".into(), f64::INFINITY),
            ],
            reason: "within budget: 1.2% < 10% tolerance\nsecond line".into(),
        };
        let line = outcome.encode_line("abcdef012345");
        let (id, decoded) = decode_line(&line).expect("decodes");
        assert_eq!(id, "abcdef012345");
        assert_eq!(decoded.gate, GateOutcome::Pass);
        assert_eq!(decoded.metrics[0], ("cycles_per_op".into(), 38240.512));
        assert_eq!(decoded.metrics[1], ("mi_bits".into(), 0.03125));
        assert_eq!(decoded.metrics[2].1, 1e308);
        assert_eq!(decoded.reason, outcome.reason);
        // Re-encoding the decoded outcome is byte-stable apart from the
        // infinity sentinel, which decodes to its finite stand-in.
        let reline = decoded.encode_line(&id);
        assert_eq!(decode_line(&reline).expect("re-decodes").1, decoded);
    }

    #[test]
    fn truncated_lines_are_rejected_not_misread() {
        let outcome = CellOutcome {
            gate: GateOutcome::Fail,
            metrics: vec![("x".into(), 1.0)],
            reason: "boom".into(),
        };
        let line = outcome.encode_line("0123456789ab");
        for cut in 1..line.len() {
            assert!(
                decode_line(&line[..cut]).is_none(),
                "truncated line decoded at cut {cut}"
            );
        }
        assert!(decode_line(&line).is_some(), "full line decodes");
    }

    #[test]
    fn derived_seed_varies_by_seed_axis() {
        let a = spec(CellKind::Replay);
        let mut b = spec(CellKind::Replay);
        b.seed = Some(2);
        let b = CellSpec::new(
            b.kind,
            b.policy,
            b.workload,
            b.enclave_size,
            b.fault_plan,
            b.traffic_shape,
            b.seed,
            b.params,
        );
        assert_ne!(a.derived_seed(), b.derived_seed());
    }
}
