//! Config-driven experiment campaign runner.
//!
//! The evaluation of a self-paging-enclave system is a *matrix*, not a
//! script: policy × workload × enclave size × fault plan × traffic
//! shape × seed, sliced differently for each experiment family. Before
//! this crate, every CI gate and EXPERIMENTS.md recipe hand-rolled its
//! own slice with bespoke flags. `autarky-campaign` replaces that with
//! one declarative TOML config:
//!
//! * [`toml`] parses the offline TOML subset the configs use;
//! * [`config`] expands `[matrix]` axes × `[[suite]]` overrides into
//!   [`cell::CellSpec`]s, each content-addressed by a hash of
//!   everything that affects its outcome;
//! * [`runner`] executes cells on a thread pool, journaling every
//!   completion through [`journal`] so an interrupted campaign resumes
//!   without re-running finished cells;
//! * [`kinds`] maps each cell onto its subsystem (bench / leakage /
//!   replay / fleet) as a library call;
//! * [`report`] renders one JSON + markdown report whose bytes are
//!   identical whether or not the run was interrupted.
//!
//! The `campaign` binary wires these together behind `--config`,
//! `--out`, `--jobs`, `--dry-run`, and `--fresh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cell;
pub mod config;
pub mod journal;
pub mod kinds;
pub mod report;
pub mod runner;
pub mod toml;

pub use cell::{CellKind, CellOutcome, CellSpec, GateOutcome, SuiteParams};
pub use config::{CampaignConfig, ConfigError};
pub use journal::Journal;
pub use kinds::execute_cell;
pub use report::{render_bench_trend, CampaignReport};
pub use runner::{run_cells, CellRun};
